/**
 * @file
 * GKS assembler and executor.
 */

#include "simt/asm.hh"

#include <cstring>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace gwc::simt
{

namespace
{

enum class Op : uint8_t
{
    Mov, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max,
    Neg, Abs, Fma, Sqrt, Rsqrt, Exp, Log, Sin, Cos, Cvt,
    Ld, St, Lds, Sts, AtomAdd, AtomAddShared,
    Gid, GidY, Tid, Lane, CtaId
};

enum class Ty : uint8_t { U32, S32, F32 };

enum class Cc : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

struct Operand
{
    enum class K : uint8_t { None, Reg, Imm, Param };
    K k = K::None;
    uint32_t idx = 0;   ///< register or parameter index
    uint32_t bits = 0;  ///< immediate bit pattern
};

struct Instr
{
    Op op = Op::Mov;
    Ty ty = Ty::U32;
    Ty srcTy = Ty::U32; ///< cvt source type
    uint32_t dst = 0;
    Operand a, b, c;
    uint32_t param = 0; ///< base parameter of memory ops
};

struct Node;
using Block = std::vector<Node>;

struct Node
{
    enum class K : uint8_t { Plain, If, While, Bar };
    K k = K::Plain;
    uint32_t pc = 0;    ///< static PC, indexes AsmProgramImpl::listing
    Instr ins;     ///< Plain payload, or the If/While comparison
    Cc cc = Cc::Eq;
    Block thenB;   ///< If-then / While-body
    Block elseB;
};

float
asF(uint32_t b)
{
    float f;
    std::memcpy(&f, &b, 4);
    return f;
}

uint32_t
asB(float f)
{
    uint32_t b;
    std::memcpy(&b, &f, 4);
    return b;
}

int32_t
asS(uint32_t b)
{
    int32_t s;
    std::memcpy(&s, &b, 4);
    return s;
}

uint32_t
asBs(int32_t s)
{
    uint32_t b;
    std::memcpy(&b, &s, 4);
    return b;
}

} // anonymous namespace

/** Parsed program plus its executor state factory. */
class AsmProgramImpl
{
  public:
    std::string name;
    std::vector<AsmParam> params;
    Block body;
    uint32_t numRegs = 0;
    uint32_t staticInstrs = 0;
    /// Source text of every executable node, indexed by static PC.
    std::vector<std::string> listing;

    KernelFn makeEntry(std::shared_ptr<AsmProgramImpl> self) const;
};

namespace
{

// ----------------------------------------------------------------
// Parser
// ----------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &src) : src_(src) {}

    std::shared_ptr<AsmProgramImpl>
    parse()
    {
        auto prog = std::make_shared<AsmProgramImpl>();
        prog_ = prog.get();
        blockStack_.push_back(&prog->body);

        std::istringstream is(src_);
        std::string line;
        while (std::getline(is, line)) {
            ++lineNo_;
            parseLine(line);
        }
        if (prog_->name.empty())
            die("missing .kernel directive");
        if (blockStack_.size() != 1)
            die("unterminated if/while block");
        prog_->numRegs = uint32_t(regs_.size());
        return prog;
    }

  private:
    [[noreturn]] void
    die(const std::string &msg)
    {
        fatal("GKS line %u: %s", lineNo_, msg.c_str());
    }

    static std::vector<std::string>
    tokenize(const std::string &line)
    {
        std::string clean;
        for (char c : line) {
            if (c == ';' || c == '#')
                break;
            clean.push_back(c == ',' ? ' ' : c);
        }
        std::vector<std::string> toks;
        std::istringstream is(clean);
        std::string t;
        while (is >> t)
            toks.push_back(t);
        return toks;
    }

    uint32_t
    regIndex(const std::string &tok, bool define)
    {
        if (tok.size() < 2 || tok[0] != '%')
            die("expected register, got '" + tok + "'");
        std::string name = tok.substr(1);
        auto it = regs_.find(name);
        if (it == regs_.end()) {
            if (!define)
                die("register %" + name + " read before write");
            uint32_t idx = uint32_t(regs_.size());
            regs_.emplace(name, idx);
            return idx;
        }
        return it->second;
    }

    uint32_t
    paramIndex(const std::string &name)
    {
        for (uint32_t i = 0; i < prog_->params.size(); ++i)
            if (prog_->params[i].name == name)
                return i;
        die("unknown parameter $" + name);
    }

    Operand
    operand(const std::string &tok, Ty ty)
    {
        Operand o;
        if (tok[0] == '%') {
            o.k = Operand::K::Reg;
            o.idx = regIndex(tok, false);
        } else if (tok[0] == '$') {
            o.k = Operand::K::Param;
            o.idx = paramIndex(tok.substr(1));
            if (prog_->params[o.idx].kind == AsmParam::Kind::Ptr)
                die("pointer parameter $" + tok.substr(1) +
                    " used as a scalar operand");
        } else {
            o.k = Operand::K::Imm;
            try {
                if (ty == Ty::F32)
                    o.bits = asB(std::stof(tok));
                else if (ty == Ty::S32)
                    o.bits = asBs(int32_t(std::stol(tok, nullptr, 0)));
                else
                    o.bits =
                        uint32_t(std::stoul(tok, nullptr, 0));
            } catch (const std::exception &) {
                die("bad immediate '" + tok + "'");
            }
        }
        return o;
    }

    /** Parse "$p[%i]" into (param, index register). */
    void
    memRef(const std::string &tok, uint32_t &param, Operand &idx,
           bool shared)
    {
        size_t lb = tok.find('[');
        size_t rb = tok.find(']');
        if (lb == std::string::npos || rb != tok.size() - 1)
            die("expected memory reference, got '" + tok + "'");
        std::string base = tok.substr(0, lb);
        std::string inner = tok.substr(lb + 1, rb - lb - 1);
        if (shared) {
            if (base != "sm")
                die("shared reference must be sm[...], got '" + tok +
                    "'");
            param = 0;
        } else {
            if (base.empty() || base[0] != '$')
                die("global reference needs a $pointer base");
            param = paramIndex(base.substr(1));
            if (prog_->params[param].kind != AsmParam::Kind::Ptr)
                die("memory base $" + base.substr(1) +
                    " is not a ptr parameter");
        }
        idx = operand(inner, Ty::U32);
    }

    Ty
    tyOf(const std::string &s)
    {
        if (s == "u32")
            return Ty::U32;
        if (s == "s32")
            return Ty::S32;
        if (s == "f32")
            return Ty::F32;
        die("unknown type suffix '." + s + "'");
    }

    Cc
    ccOf(const std::string &s)
    {
        if (s == "eq")
            return Cc::Eq;
        if (s == "ne")
            return Cc::Ne;
        if (s == "lt")
            return Cc::Lt;
        if (s == "le")
            return Cc::Le;
        if (s == "gt")
            return Cc::Gt;
        if (s == "ge")
            return Cc::Ge;
        die("unknown condition '." + s + "'");
    }

    /** Pre-comment source text of @p line, whitespace-trimmed. */
    static std::string
    cleanText(const std::string &line)
    {
        std::string s = line.substr(0, line.find_first_of(";#"));
        size_t b = s.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            return "";
        size_t e = s.find_last_not_of(" \t\r");
        return s.substr(b, e - b + 1);
    }

    /** Assign the next static PC to @p node and record its text. */
    void
    assignPc(Node &node, const std::string &line)
    {
        node.pc = uint32_t(prog_->listing.size());
        prog_->listing.push_back(cleanText(line));
    }

    void
    push(Node node, const std::string &line)
    {
        if (node.k == Node::K::Plain)
            ++prog_->staticInstrs;
        assignPc(node, line);
        blockStack_.back()->push_back(std::move(node));
    }

    void
    parseLine(const std::string &line)
    {
        auto toks = tokenize(line);
        if (toks.empty())
            return;
        const std::string &head = toks[0];

        // Directives.
        if (head == ".kernel") {
            if (toks.size() != 2)
                die(".kernel needs a name");
            prog_->name = toks[1];
            return;
        }
        if (head == ".param") {
            if (toks.size() != 3)
                die(".param needs: kind name");
            AsmParam p;
            if (toks[1] == "ptr")
                p.kind = AsmParam::Kind::Ptr;
            else if (toks[1] == "u32")
                p.kind = AsmParam::Kind::U32;
            else if (toks[1] == "f32")
                p.kind = AsmParam::Kind::F32;
            else
                die("unknown param kind '" + toks[1] + "'");
            p.name = toks[2];
            prog_->params.push_back(p);
            return;
        }

        // Mnemonic with dot-suffixes.
        std::vector<std::string> parts;
        {
            std::string cur;
            for (char c : head) {
                if (c == '.') {
                    parts.push_back(cur);
                    cur.clear();
                } else {
                    cur.push_back(c);
                }
            }
            parts.push_back(cur);
        }
        const std::string &m = parts[0];

        // Control structure.
        if (m == "if" || m == "while") {
            if (parts.size() != 3 || toks.size() != 3)
                die(m + " needs: " + m + ".<cc>.<type> a, b");
            Node n;
            n.k = m == "if" ? Node::K::If : Node::K::While;
            n.cc = ccOf(parts[1]);
            n.ins.ty = tyOf(parts[2]);
            n.ins.a = operand(toks[1], n.ins.ty);
            n.ins.b = operand(toks[2], n.ins.ty);
            ++prog_->staticInstrs;
            assignPc(n, line);
            blockStack_.back()->push_back(std::move(n));
            Node &placed = blockStack_.back()->back();
            blockStack_.push_back(&placed.thenB);
            kindStack_.push_back(placed.k);
            inElse_.push_back(false);
            return;
        }
        if (m == "else") {
            if (kindStack_.empty() || kindStack_.back() != Node::K::If ||
                inElse_.back())
                die("else without matching if");
            blockStack_.pop_back();
            Node &owner = blockStack_.back()->back();
            blockStack_.push_back(&owner.elseB);
            inElse_.back() = true;
            return;
        }
        if (m == "endif") {
            if (kindStack_.empty() || kindStack_.back() != Node::K::If)
                die("endif without matching if");
            blockStack_.pop_back();
            kindStack_.pop_back();
            inElse_.pop_back();
            return;
        }
        if (m == "endwhile") {
            if (kindStack_.empty() ||
                kindStack_.back() != Node::K::While)
                die("endwhile without matching while");
            blockStack_.pop_back();
            kindStack_.pop_back();
            inElse_.pop_back();
            return;
        }
        if (m == "bar") {
            if (blockStack_.size() != 1)
                die("bar inside divergent control flow");
            Node n;
            n.k = Node::K::Bar;
            push(std::move(n), line);
            return;
        }

        // Regular instructions.
        Node n;
        n.ins = parseInstr(m, parts, toks);
        push(std::move(n), line);
    }

    Instr
    parseInstr(const std::string &m,
               const std::vector<std::string> &parts,
               const std::vector<std::string> &toks)
    {
        Instr ins;
        auto needTy = [&](size_t at) {
            if (parts.size() <= at)
                die("missing type suffix on '" + m + "'");
            return tyOf(parts[at]);
        };
        auto dst = [&](size_t tok) {
            if (toks.size() <= tok)
                die("missing destination register");
            return regIndex(toks[tok], true);
        };
        auto src = [&](size_t tok, Ty ty) {
            if (toks.size() <= tok)
                die("missing operand");
            return operand(toks[tok], ty);
        };

        static const std::map<std::string, Op> binops = {
            {"add", Op::Add}, {"sub", Op::Sub}, {"mul", Op::Mul},
            {"div", Op::Div}, {"rem", Op::Rem}, {"and", Op::And},
            {"or", Op::Or},   {"xor", Op::Xor}, {"min", Op::Min},
            {"max", Op::Max}, {"shl", Op::Shl}, {"shr", Op::Shr},
        };
        static const std::map<std::string, Op> unops = {
            {"mov", Op::Mov},   {"neg", Op::Neg},
            {"abs", Op::Abs},   {"sqrt", Op::Sqrt},
            {"rsqrt", Op::Rsqrt}, {"exp", Op::Exp},
            {"log", Op::Log},   {"sin", Op::Sin},
            {"cos", Op::Cos},
        };
        static const std::map<std::string, Op> specials = {
            {"gid", Op::Gid},   {"gidy", Op::GidY},
            {"tid", Op::Tid},   {"lane", Op::Lane},
            {"ctaid", Op::CtaId},
        };

        if (auto it = specials.find(m); it != specials.end()) {
            ins.op = it->second;
            ins.dst = dst(1);
            return ins;
        }
        if (auto it = binops.find(m); it != binops.end()) {
            ins.op = it->second;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            ins.b = src(3, ins.ty);
            return ins;
        }
        if (auto it = unops.find(m); it != unops.end()) {
            ins.op = it->second;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            return ins;
        }
        if (m == "fma") {
            ins.op = Op::Fma;
            ins.ty = needTy(1);
            if (ins.ty != Ty::F32)
                die("fma supports .f32 only");
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            ins.b = src(3, ins.ty);
            ins.c = src(4, ins.ty);
            return ins;
        }
        if (m == "cvt") {
            // cvt.<dstTy>.<srcTy> %d, src
            if (parts.size() != 3)
                die("cvt needs cvt.<dstTy>.<srcTy>");
            ins.op = Op::Cvt;
            ins.ty = tyOf(parts[1]);
            ins.srcTy = tyOf(parts[2]);
            ins.dst = dst(1);
            ins.a = src(2, ins.srcTy);
            return ins;
        }
        if (m == "ld" || m == "lds") {
            ins.op = m == "ld" ? Op::Ld : Op::Lds;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            if (toks.size() <= 2)
                die("missing memory reference");
            memRef(toks[2], ins.param, ins.a, m == "lds");
            return ins;
        }
        if (m == "st" || m == "sts") {
            ins.op = m == "st" ? Op::St : Op::Sts;
            ins.ty = needTy(1);
            if (toks.size() <= 2)
                die("st needs: st.<t> ref, src");
            memRef(toks[1], ins.param, ins.a, m == "sts");
            ins.b = src(2, ins.ty);
            return ins;
        }
        if (m == "atom" || m == "atoms") {
            // atom.add.u32 %d, $p[%i], src
            if (parts.size() != 3 || parts[1] != "add")
                die("only atom.add is supported");
            ins.op = m == "atom" ? Op::AtomAdd : Op::AtomAddShared;
            ins.ty = tyOf(parts[2]);
            if (ins.ty == Ty::F32)
                die("atom.add supports integer types only");
            ins.dst = dst(1);
            if (toks.size() <= 2)
                die("missing memory reference");
            memRef(toks[2], ins.param, ins.a, m == "atoms");
            ins.b = src(3, ins.ty);
            return ins;
        }
        die("unknown instruction '" + m + "'");
    }

    const std::string &src_;
    AsmProgramImpl *prog_ = nullptr;
    uint32_t lineNo_ = 0;
    std::map<std::string, uint32_t> regs_;
    std::vector<Block *> blockStack_;
    std::vector<Node::K> kindStack_;
    std::vector<bool> inElse_;
};

// ----------------------------------------------------------------
// Executor
// ----------------------------------------------------------------

struct Frame
{
    Warp &w;
    const AsmProgramImpl &prog;
    std::vector<Reg<uint32_t>> regs;

    Reg<uint32_t>
    value(const Operand &o)
    {
        switch (o.k) {
          case Operand::K::Reg:
            return regs[o.idx];
          case Operand::K::Imm:
            return w.imm(o.bits);
          case Operand::K::Param: {
            // Scalar parameters broadcast like a constant bank.
            return w.imm(w.param<uint32_t>(o.idx));
          }
          default:
            panic("GKS: empty operand evaluated");
        }
    }
};

Reg<uint32_t>
execBinary(Frame &f, const Instr &ins)
{
    Warp &w = f.w;
    Reg<uint32_t> A = f.value(ins.a);
    Reg<uint32_t> B = f.value(ins.b);
    Ty ty = ins.ty;

    auto emitF = [&](auto fn) {
        return w.emitBin<uint32_t>(
            OpClass::FpAlu,
            [fn](uint32_t x, uint32_t y) {
                return asB(fn(asF(x), asF(y)));
            },
            A, B);
    };
    auto emitU = [&](auto fn) {
        return w.emitBin<uint32_t>(OpClass::IntAlu, fn, A, B);
    };
    auto emitS = [&](auto fn) {
        return w.emitBin<uint32_t>(
            OpClass::IntAlu,
            [fn](uint32_t x, uint32_t y) {
                return asBs(fn(asS(x), asS(y)));
            },
            A, B);
    };

    switch (ins.op) {
      case Op::Add:
        if (ty == Ty::F32)
            return emitF([](float x, float y) { return x + y; });
        return emitU([](uint32_t x, uint32_t y) { return x + y; });
      case Op::Sub:
        if (ty == Ty::F32)
            return emitF([](float x, float y) { return x - y; });
        return emitU([](uint32_t x, uint32_t y) { return x - y; });
      case Op::Mul:
        if (ty == Ty::F32)
            return emitF([](float x, float y) { return x * y; });
        return emitU([](uint32_t x, uint32_t y) { return x * y; });
      case Op::Div:
        if (ty == Ty::F32)
            return emitF([](float x, float y) { return x / y; });
        if (ty == Ty::S32)
            return emitS([](int32_t x, int32_t y) {
                return y ? x / y : 0;
            });
        return emitU([](uint32_t x, uint32_t y) {
            return y ? x / y : 0u;
        });
      case Op::Rem:
        if (ty == Ty::F32)
            panic("GKS: rem.f32 is not defined");
        if (ty == Ty::S32)
            return emitS([](int32_t x, int32_t y) {
                return y ? x % y : 0;
            });
        return emitU([](uint32_t x, uint32_t y) {
            return y ? x % y : 0u;
        });
      case Op::And:
        return emitU([](uint32_t x, uint32_t y) { return x & y; });
      case Op::Or:
        return emitU([](uint32_t x, uint32_t y) { return x | y; });
      case Op::Xor:
        return emitU([](uint32_t x, uint32_t y) { return x ^ y; });
      case Op::Shl:
        return emitU([](uint32_t x, uint32_t y) {
            return y >= 32 ? 0u : x << y;
        });
      case Op::Shr:
        return emitU([](uint32_t x, uint32_t y) {
            return y >= 32 ? 0u : x >> y;
        });
      case Op::Min:
        if (ty == Ty::F32)
            return emitF([](float x, float y) {
                return x < y ? x : y;
            });
        if (ty == Ty::S32)
            return emitS([](int32_t x, int32_t y) {
                return x < y ? x : y;
            });
        return emitU([](uint32_t x, uint32_t y) {
            return x < y ? x : y;
        });
      case Op::Max:
        if (ty == Ty::F32)
            return emitF([](float x, float y) {
                return x > y ? x : y;
            });
        if (ty == Ty::S32)
            return emitS([](int32_t x, int32_t y) {
                return x > y ? x : y;
            });
        return emitU([](uint32_t x, uint32_t y) {
            return x > y ? x : y;
        });
      default:
        panic("GKS: not a binary op");
    }
}

Reg<uint32_t>
execUnary(Frame &f, const Instr &ins)
{
    Warp &w = f.w;
    Reg<uint32_t> A = f.value(ins.a);
    auto sfu = [&](auto fn) {
        return w.emitUn<uint32_t>(
            OpClass::Sfu,
            [fn](uint32_t x) { return asB(fn(asF(x))); }, A);
    };
    switch (ins.op) {
      case Op::Mov:
        return w.emitUn<uint32_t>(OpClass::IntAlu,
                                  [](uint32_t x) { return x; }, A);
      case Op::Neg:
        if (ins.ty == Ty::F32)
            return w.emitUn<uint32_t>(
                OpClass::FpAlu,
                [](uint32_t x) { return asB(-asF(x)); }, A);
        return w.emitUn<uint32_t>(
            OpClass::IntAlu,
            [](uint32_t x) { return asBs(-asS(x)); }, A);
      case Op::Abs:
        if (ins.ty == Ty::F32)
            return w.emitUn<uint32_t>(
                OpClass::FpAlu,
                [](uint32_t x) { return asB(std::fabs(asF(x))); },
                A);
        return w.emitUn<uint32_t>(
            OpClass::IntAlu,
            [](uint32_t x) {
                int32_t s = asS(x);
                return asBs(s < 0 ? -s : s);
            },
            A);
      case Op::Sqrt:
        return sfu([](float x) { return std::sqrt(x); });
      case Op::Rsqrt:
        return sfu([](float x) { return 1.0f / std::sqrt(x); });
      case Op::Exp:
        return sfu([](float x) { return std::exp(x); });
      case Op::Log:
        return sfu([](float x) { return std::log(x); });
      case Op::Sin:
        return sfu([](float x) { return std::sin(x); });
      case Op::Cos:
        return sfu([](float x) { return std::cos(x); });
      case Op::Cvt: {
        Ty to = ins.ty, from = ins.srcTy;
        return w.emitUn<uint32_t>(
            OpClass::Other,
            [to, from](uint32_t x) -> uint32_t {
                double v;
                if (from == Ty::F32)
                    v = asF(x);
                else if (from == Ty::S32)
                    v = asS(x);
                else
                    v = x;
                if (to == Ty::F32)
                    return asB(float(v));
                if (to == Ty::S32)
                    return asBs(int32_t(v));
                return uint32_t(int64_t(v));
            },
            A);
      }
      default:
        panic("GKS: not a unary op");
    }
}

Pred
execCompare(Frame &f, Cc cc, Ty ty, const Operand &a,
            const Operand &b)
{
    Warp &w = f.w;
    Reg<uint32_t> A = f.value(a);
    Reg<uint32_t> B = f.value(b);
    OpClass cls = ty == Ty::F32 ? OpClass::FpAlu : OpClass::IntAlu;
    auto cmp = [cc](auto x, auto y) {
        switch (cc) {
          case Cc::Eq: return x == y;
          case Cc::Ne: return x != y;
          case Cc::Lt: return x < y;
          case Cc::Le: return x <= y;
          case Cc::Gt: return x > y;
          case Cc::Ge: return x >= y;
        }
        return false;
    };
    if (ty == Ty::F32)
        return w.emitCmp(cls,
                         [cmp](uint32_t x, uint32_t y) {
                             return cmp(asF(x), asF(y));
                         },
                         A, B);
    if (ty == Ty::S32)
        return w.emitCmp(cls,
                         [cmp](uint32_t x, uint32_t y) {
                             return cmp(asS(x), asS(y));
                         },
                         A, B);
    return w.emitCmp(cls,
                     [cmp](uint32_t x, uint32_t y) {
                         return cmp(x, y);
                     },
                     A, B);
}

void execBlock(Frame &f, const Block &block);

void
execInstr(Frame &f, const Instr &ins)
{
    Warp &w = f.w;
    switch (ins.op) {
      case Op::Gid:
        f.regs[ins.dst] = w.globalIdX();
        return;
      case Op::GidY:
        f.regs[ins.dst] = w.globalIdY();
        return;
      case Op::Tid:
        f.regs[ins.dst] = w.tidLinear();
        return;
      case Op::Lane:
        f.regs[ins.dst] = w.laneId();
        return;
      case Op::CtaId:
        f.regs[ins.dst] = w.imm(w.ctaId().x);
        return;
      case Op::Ld: {
        uint64_t base = w.param<uint64_t>(ins.param);
        Reg<uint64_t> addr =
            w.gaddr<uint32_t>(base, f.value(ins.a));
        f.regs[ins.dst] = w.ldGlobal<uint32_t>(addr);
        return;
      }
      case Op::St: {
        uint64_t base = w.param<uint64_t>(ins.param);
        Reg<uint64_t> addr =
            w.gaddr<uint32_t>(base, f.value(ins.a));
        w.stGlobal<uint32_t>(addr, f.value(ins.b));
        return;
      }
      case Op::Lds: {
        Reg<uint32_t> off =
            w.saddr<uint32_t>(0, f.value(ins.a));
        f.regs[ins.dst] = w.ldShared<uint32_t>(off);
        return;
      }
      case Op::Sts: {
        Reg<uint32_t> off =
            w.saddr<uint32_t>(0, f.value(ins.a));
        w.stShared<uint32_t>(off, f.value(ins.b));
        return;
      }
      case Op::AtomAdd: {
        uint64_t base = w.param<uint64_t>(ins.param);
        Reg<uint64_t> addr =
            w.gaddr<uint32_t>(base, f.value(ins.a));
        f.regs[ins.dst] =
            w.atomicAddGlobal<uint32_t>(addr, f.value(ins.b));
        return;
      }
      case Op::AtomAddShared: {
        Reg<uint32_t> off =
            w.saddr<uint32_t>(0, f.value(ins.a));
        f.regs[ins.dst] =
            w.atomicAddShared<uint32_t>(off, f.value(ins.b));
        return;
      }
      case Op::Fma: {
        Reg<uint32_t> A = f.value(ins.a);
        Reg<uint32_t> B = f.value(ins.b);
        Reg<uint32_t> C = f.value(ins.c);
        f.regs[ins.dst] = w.emitTri<uint32_t>(
            OpClass::FpAlu,
            [](uint32_t x, uint32_t y, uint32_t z) {
                return asB(asF(x) * asF(y) + asF(z));
            },
            A, B, C);
        return;
      }
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr: case Op::Min: case Op::Max:
        f.regs[ins.dst] = execBinary(f, ins);
        return;
      default:
        f.regs[ins.dst] = execUnary(f, ins);
        return;
    }
}

void
execNode(Frame &f, const Node &node)
{
    switch (node.k) {
      case Node::K::Plain:
        f.w.setPc(node.pc);
        execInstr(f, node.ins);
        return;
      case Node::K::If:
        f.w.setPc(node.pc);
        f.w.IfElse(
            execCompare(f, node.cc, node.ins.ty, node.ins.a,
                        node.ins.b),
            [&] { execBlock(f, node.thenB); },
            [&] { execBlock(f, node.elseB); });
        return;
      case Node::K::While:
        f.w.While(
            [&] {
                // Re-stamp per iteration: the body's nodes moved the
                // PC away from the loop header.
                f.w.setPc(node.pc);
                return execCompare(f, node.cc, node.ins.ty,
                                   node.ins.a, node.ins.b);
            },
            [&] { execBlock(f, node.thenB); });
        return;
      case Node::K::Bar:
        panic("GKS: barrier below the top level escaped the parser");
    }
}

void
execBlock(Frame &f, const Block &block)
{
    for (const auto &node : block)
        execNode(f, node);
}

} // anonymous namespace

KernelFn
AsmProgramImpl::makeEntry(std::shared_ptr<AsmProgramImpl> self) const
{
    return [self](Warp &w) -> WarpTask {
        Frame f{w, *self, {}};
        f.regs.resize(self->numRegs);
        for (auto &r : f.regs)
            r.w = &w;
        for (const auto &node : self->body) {
            if (node.k == Node::K::Bar) {
                w.setPc(node.pc);
                co_await w.barrier();
            } else {
                execNode(f, node);
            }
        }
        co_return;
    };
}

AsmKernel::AsmKernel(std::shared_ptr<AsmProgramImpl> impl)
    : impl_(std::move(impl))
{}

const std::string &
AsmKernel::name() const
{
    return impl_->name;
}

const std::vector<AsmParam> &
AsmKernel::params() const
{
    return impl_->params;
}

uint32_t
AsmKernel::registerCount() const
{
    return impl_->numRegs;
}

uint32_t
AsmKernel::instructionCount() const
{
    return impl_->staticInstrs;
}

const std::vector<std::string> &
AsmKernel::listing() const
{
    return impl_->listing;
}

KernelFn
AsmKernel::entry() const
{
    return impl_->makeEntry(impl_);
}

AsmKernel
assembleKernel(const std::string &source)
{
    Parser parser(source);
    return AsmKernel(parser.parse());
}

} // namespace gwc::simt
