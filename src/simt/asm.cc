/**
 * @file
 * GKS assembler front end: tokenizer, parser and the AsmKernel API.
 * The executors live in asm_interp.cc (reference tree walker) and
 * asm_exec.cc (compiled bytecode, the default); the lowering between
 * them in asm_compile.cc.
 */

#include "simt/asm.hh"

#include <cstdlib>
#include <map>
#include <sstream>
#include <string_view>

#include "runtime/status.hh"
#include "simt/asm_ir.hh"

namespace gwc::simt
{

namespace
{

using namespace gks;

// ----------------------------------------------------------------
// Parser
// ----------------------------------------------------------------

/** One source token with its 1-based column. */
struct Tok
{
    std::string text;
    uint32_t col = 0;
};

class Parser
{
  public:
    explicit Parser(const std::string &src) : src_(src) {}

    std::shared_ptr<AsmProgramImpl>
    parse()
    {
        auto prog = std::make_shared<AsmProgramImpl>();
        prog_ = prog.get();
        blockStack_.push_back(&prog->body);

        std::istringstream is(src_);
        std::string line;
        while (std::getline(is, line)) {
            ++lineNo_;
            parseLine(line);
        }
        at_ = {};
        if (prog_->name.empty())
            die("missing .kernel directive");
        if (blockStack_.size() != 1)
            die("unterminated if/while block");
        prog_->numRegs = uint32_t(regs_.size());
        return prog;
    }

  private:
    /**
     * Report a syntax error at the current line, pointing at the
     * most recently examined token, through the Status model.
     */
    [[noreturn]] void
    die(const std::string &msg)
    {
        std::string near =
            at_.text.empty() ? "" : " near '" + at_.text + "'";
        throw Error(makeStatus(
            ErrorCode::InvalidArgument, "GKS:%u:%u: %s%s", lineNo_,
            at_.col == 0 ? 1 : at_.col, msg.c_str(), near.c_str()));
    }

    /** Mark @p t as the token a subsequent die() points at. */
    const std::string &
    at(const Tok &t)
    {
        at_ = t;
        return t.text;
    }

    static std::vector<Tok>
    tokenize(const std::string &line)
    {
        std::vector<Tok> toks;
        Tok cur;
        for (uint32_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (c == ';' || c == '#')
                break;
            if (c == ',' || c == ' ' || c == '\t' || c == '\r') {
                if (!cur.text.empty())
                    toks.push_back(std::move(cur));
                cur = {};
                continue;
            }
            if (cur.text.empty())
                cur.col = i + 1;
            cur.text.push_back(c);
        }
        if (!cur.text.empty())
            toks.push_back(std::move(cur));
        return toks;
    }

    uint32_t
    regIndex(const Tok &tok, bool define)
    {
        at(tok);
        if (tok.text.size() < 2 || tok.text[0] != '%')
            die("expected register, got '" + tok.text + "'");
        std::string name = tok.text.substr(1);
        auto it = regs_.find(name);
        if (it == regs_.end()) {
            if (!define)
                die("register %" + name + " read before write");
            uint32_t idx = uint32_t(regs_.size());
            regs_.emplace(name, idx);
            return idx;
        }
        return it->second;
    }

    uint32_t
    paramIndex(const std::string &name)
    {
        for (uint32_t i = 0; i < prog_->params.size(); ++i)
            if (prog_->params[i].name == name)
                return i;
        die("unknown parameter $" + name);
    }

    Operand
    operand(const Tok &tok, Ty ty)
    {
        at(tok);
        Operand o;
        if (tok.text[0] == '%') {
            o.k = Operand::K::Reg;
            o.idx = regIndex(tok, false);
        } else if (tok.text[0] == '$') {
            o.k = Operand::K::Param;
            o.idx = paramIndex(tok.text.substr(1));
            if (prog_->params[o.idx].kind == AsmParam::Kind::Ptr)
                die("pointer parameter $" + tok.text.substr(1) +
                    " used as a scalar operand");
        } else {
            o.k = Operand::K::Imm;
            try {
                if (ty == Ty::F32)
                    o.bits = asB(std::stof(tok.text));
                else if (ty == Ty::S32)
                    o.bits = asBs(
                        int32_t(std::stol(tok.text, nullptr, 0)));
                else
                    o.bits =
                        uint32_t(std::stoul(tok.text, nullptr, 0));
            } catch (const std::exception &) {
                die("bad immediate '" + tok.text + "'");
            }
        }
        return o;
    }

    /** Parse "$p[%i]" into (param, index register). */
    void
    memRef(const Tok &tok, uint32_t &param, Operand &idx, bool shared)
    {
        at(tok);
        size_t lb = tok.text.find('[');
        size_t rb = tok.text.find(']');
        if (lb == std::string::npos || rb != tok.text.size() - 1)
            die("expected memory reference, got '" + tok.text + "'");
        std::string base = tok.text.substr(0, lb);
        Tok inner{tok.text.substr(lb + 1, rb - lb - 1),
                  tok.col + uint32_t(lb) + 1};
        if (shared) {
            if (base != "sm")
                die("shared reference must be sm[...], got '" +
                    tok.text + "'");
            param = 0;
        } else {
            if (base.empty() || base[0] != '$')
                die("global reference needs a $pointer base");
            param = paramIndex(base.substr(1));
            if (prog_->params[param].kind != AsmParam::Kind::Ptr)
                die("memory base $" + base.substr(1) +
                    " is not a ptr parameter");
        }
        idx = operand(inner, Ty::U32);
    }

    Ty
    tyOf(const std::string &s)
    {
        if (s == "u32")
            return Ty::U32;
        if (s == "s32")
            return Ty::S32;
        if (s == "f32")
            return Ty::F32;
        die("unknown type suffix '." + s + "'");
    }

    Cc
    ccOf(const std::string &s)
    {
        if (s == "eq")
            return Cc::Eq;
        if (s == "ne")
            return Cc::Ne;
        if (s == "lt")
            return Cc::Lt;
        if (s == "le")
            return Cc::Le;
        if (s == "gt")
            return Cc::Gt;
        if (s == "ge")
            return Cc::Ge;
        die("unknown condition '." + s + "'");
    }

    /** Pre-comment source text of @p line, whitespace-trimmed. */
    static std::string
    cleanText(const std::string &line)
    {
        std::string s = line.substr(0, line.find_first_of(";#"));
        size_t b = s.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            return "";
        size_t e = s.find_last_not_of(" \t\r");
        return s.substr(b, e - b + 1);
    }

    /** Assign the next static PC to @p node and record its text. */
    void
    assignPc(Node &node, const std::string &line)
    {
        node.pc = uint32_t(prog_->listing.size());
        prog_->listing.push_back(cleanText(line));
    }

    void
    push(Node node, const std::string &line)
    {
        if (node.k == Node::K::Plain)
            ++prog_->staticInstrs;
        assignPc(node, line);
        blockStack_.back()->push_back(std::move(node));
    }

    void
    parseLine(const std::string &line)
    {
        auto toks = tokenize(line);
        if (toks.empty())
            return;
        const std::string &head = at(toks[0]);

        // Directives.
        if (head == ".kernel") {
            if (toks.size() != 2)
                die(".kernel needs a name");
            prog_->name = toks[1].text;
            return;
        }
        if (head == ".param") {
            if (toks.size() != 3)
                die(".param needs: kind name");
            AsmParam p;
            at(toks[1]);
            if (toks[1].text == "ptr")
                p.kind = AsmParam::Kind::Ptr;
            else if (toks[1].text == "u32")
                p.kind = AsmParam::Kind::U32;
            else if (toks[1].text == "f32")
                p.kind = AsmParam::Kind::F32;
            else
                die("unknown param kind '" + toks[1].text + "'");
            p.name = toks[2].text;
            prog_->params.push_back(p);
            return;
        }

        // Mnemonic with dot-suffixes.
        std::vector<std::string> parts;
        {
            std::string cur;
            for (char c : head) {
                if (c == '.') {
                    parts.push_back(cur);
                    cur.clear();
                } else {
                    cur.push_back(c);
                }
            }
            parts.push_back(cur);
        }
        const std::string &m = parts[0];

        // Control structure.
        if (m == "if" || m == "while") {
            if (parts.size() != 3 || toks.size() != 3)
                die(m + " needs: " + m + ".<cc>.<type> a, b");
            Node n;
            n.k = m == "if" ? Node::K::If : Node::K::While;
            n.cc = ccOf(parts[1]);
            n.ins.ty = tyOf(parts[2]);
            n.ins.a = operand(toks[1], n.ins.ty);
            n.ins.b = operand(toks[2], n.ins.ty);
            ++prog_->staticInstrs;
            assignPc(n, line);
            blockStack_.back()->push_back(std::move(n));
            Node &placed = blockStack_.back()->back();
            blockStack_.push_back(&placed.thenB);
            kindStack_.push_back(placed.k);
            inElse_.push_back(false);
            return;
        }
        if (m == "else") {
            if (kindStack_.empty() || kindStack_.back() != Node::K::If ||
                inElse_.back())
                die("else without matching if");
            blockStack_.pop_back();
            Node &owner = blockStack_.back()->back();
            blockStack_.push_back(&owner.elseB);
            inElse_.back() = true;
            return;
        }
        if (m == "endif") {
            if (kindStack_.empty() || kindStack_.back() != Node::K::If)
                die("endif without matching if");
            blockStack_.pop_back();
            kindStack_.pop_back();
            inElse_.pop_back();
            return;
        }
        if (m == "endwhile") {
            if (kindStack_.empty() ||
                kindStack_.back() != Node::K::While)
                die("endwhile without matching while");
            blockStack_.pop_back();
            kindStack_.pop_back();
            inElse_.pop_back();
            return;
        }
        if (m == "bar") {
            if (blockStack_.size() != 1)
                die("bar inside divergent control flow");
            Node n;
            n.k = Node::K::Bar;
            push(std::move(n), line);
            return;
        }

        // Regular instructions.
        Node n;
        n.ins = parseInstr(m, parts, toks);
        push(std::move(n), line);
    }

    Instr
    parseInstr(const std::string &m,
               const std::vector<std::string> &parts,
               const std::vector<Tok> &toks)
    {
        Instr ins;
        auto needTy = [&](size_t idx) {
            at(toks[0]);
            if (parts.size() <= idx)
                die("missing type suffix on '" + m + "'");
            return tyOf(parts[idx]);
        };
        auto dst = [&](size_t tok) {
            if (toks.size() <= tok) {
                at(toks[0]);
                die("missing destination register");
            }
            return regIndex(toks[tok], true);
        };
        auto src = [&](size_t tok, Ty ty) {
            if (toks.size() <= tok) {
                at(toks[0]);
                die("missing operand");
            }
            return operand(toks[tok], ty);
        };

        static const std::map<std::string, Op> binops = {
            {"add", Op::Add}, {"sub", Op::Sub}, {"mul", Op::Mul},
            {"div", Op::Div}, {"rem", Op::Rem}, {"and", Op::And},
            {"or", Op::Or},   {"xor", Op::Xor}, {"min", Op::Min},
            {"max", Op::Max}, {"shl", Op::Shl}, {"shr", Op::Shr},
        };
        static const std::map<std::string, Op> unops = {
            {"mov", Op::Mov},   {"neg", Op::Neg},
            {"abs", Op::Abs},   {"sqrt", Op::Sqrt},
            {"rsqrt", Op::Rsqrt}, {"exp", Op::Exp},
            {"log", Op::Log},   {"sin", Op::Sin},
            {"cos", Op::Cos},
        };
        static const std::map<std::string, Op> specials = {
            {"gid", Op::Gid},   {"gidy", Op::GidY},
            {"tid", Op::Tid},   {"lane", Op::Lane},
            {"ctaid", Op::CtaId},
        };

        if (auto it = specials.find(m); it != specials.end()) {
            ins.op = it->second;
            ins.dst = dst(1);
            return ins;
        }
        if (auto it = binops.find(m); it != binops.end()) {
            ins.op = it->second;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            ins.b = src(3, ins.ty);
            return ins;
        }
        if (auto it = unops.find(m); it != unops.end()) {
            ins.op = it->second;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            return ins;
        }
        if (m == "fma") {
            ins.op = Op::Fma;
            ins.ty = needTy(1);
            if (ins.ty != Ty::F32)
                die("fma supports .f32 only");
            ins.dst = dst(1);
            ins.a = src(2, ins.ty);
            ins.b = src(3, ins.ty);
            ins.c = src(4, ins.ty);
            return ins;
        }
        if (m == "cvt") {
            // cvt.<dstTy>.<srcTy> %d, src
            if (parts.size() != 3)
                die("cvt needs cvt.<dstTy>.<srcTy>");
            ins.op = Op::Cvt;
            ins.ty = tyOf(parts[1]);
            ins.srcTy = tyOf(parts[2]);
            ins.dst = dst(1);
            ins.a = src(2, ins.srcTy);
            return ins;
        }
        if (m == "ld" || m == "lds") {
            ins.op = m == "ld" ? Op::Ld : Op::Lds;
            ins.ty = needTy(1);
            ins.dst = dst(1);
            if (toks.size() <= 2)
                die("missing memory reference");
            memRef(toks[2], ins.param, ins.a, m == "lds");
            return ins;
        }
        if (m == "st" || m == "sts") {
            ins.op = m == "st" ? Op::St : Op::Sts;
            ins.ty = needTy(1);
            if (toks.size() <= 2)
                die("st needs: st.<t> ref, src");
            memRef(toks[1], ins.param, ins.a, m == "sts");
            ins.b = src(2, ins.ty);
            return ins;
        }
        if (m == "atom" || m == "atoms") {
            // atom.add.u32 %d, $p[%i], src
            if (parts.size() != 3 || parts[1] != "add")
                die("only atom.add is supported");
            ins.op = m == "atom" ? Op::AtomAdd : Op::AtomAddShared;
            ins.ty = tyOf(parts[2]);
            if (ins.ty == Ty::F32)
                die("atom.add supports integer types only");
            ins.dst = dst(1);
            if (toks.size() <= 2)
                die("missing memory reference");
            memRef(toks[2], ins.param, ins.a, m == "atoms");
            ins.b = src(3, ins.ty);
            return ins;
        }
        die("unknown instruction '" + m + "'");
    }

    const std::string &src_;
    AsmProgramImpl *prog_ = nullptr;
    uint32_t lineNo_ = 0;
    Tok at_;  ///< most recently examined token (error location)
    std::map<std::string, uint32_t> regs_;
    std::vector<Block *> blockStack_;
    std::vector<Node::K> kindStack_;
    std::vector<bool> inElse_;
};

} // anonymous namespace

AsmKernel::AsmKernel(std::shared_ptr<AsmProgramImpl> impl)
    : impl_(std::move(impl))
{}

const std::string &
AsmKernel::name() const
{
    return impl_->name;
}

const std::vector<AsmParam> &
AsmKernel::params() const
{
    return impl_->params;
}

uint32_t
AsmKernel::registerCount() const
{
    return impl_->numRegs;
}

uint32_t
AsmKernel::instructionCount() const
{
    return impl_->staticInstrs;
}

const std::vector<std::string> &
AsmKernel::listing() const
{
    return impl_->listing;
}

const std::vector<uint32_t> &
AsmKernel::pcMap() const
{
    return impl_->bytecode.pcMap;
}

const std::vector<std::string> &
AsmKernel::bytecodeListing() const
{
    return impl_->bytecode.disasm;
}

KernelFn
AsmKernel::entry(AsmExec mode) const
{
    if (mode == AsmExec::Auto) {
        const char *env = std::getenv("GWC_GKS_INTERP");
        mode = env && *env && std::string_view(env) != "0"
                   ? AsmExec::Interpreted
                   : AsmExec::Compiled;
    }
    return mode == AsmExec::Interpreted ? makeInterpEntry(impl_)
                                        : makeBytecodeEntry(impl_);
}

AsmKernel
assembleKernel(const std::string &source)
{
    Parser parser(source);
    auto prog = parser.parse();
    prog->bytecode = compileBytecode(*prog);
    return AsmKernel(std::move(prog));
}

Result<AsmKernel>
tryAssembleKernel(const std::string &source)
{
    try {
        return assembleKernel(source);
    } catch (const Error &e) {
        return e.status();
    }
}

} // namespace gwc::simt
