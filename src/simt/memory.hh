/**
 * @file
 * Global-memory model of the SIMT engine.
 *
 * A flat, bounds-checked byte heap with a bump allocator. Addresses
 * start above a guard region so that address 0 behaves like a null
 * pointer and stray accesses panic instead of silently corrupting
 * neighbouring buffers.
 */

#ifndef GWC_SIMT_MEMORY_HH
#define GWC_SIMT_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "runtime/status.hh"

namespace gwc::simt
{

/**
 * Device global memory. All kernel loads and stores are routed and
 * bounds-checked here; the host reads and writes buffers through the
 * typed helpers.
 */
class GlobalMemory
{
  public:
    /** Lowest valid device address (guard region below). */
    static constexpr uint64_t kBase = 0x1000;

    GlobalMemory() = default;

    /**
     * Allocate @p bytes of device memory, 256-byte aligned.
     *
     * Throws Error(ResourceExhausted) while injected failures are
     * armed (transient: a retry succeeds) and Error(OutOfMemory) when
     * the allocation would exceed the configured budget.
     *
     * @return the device base address of the allocation.
     */
    uint64_t
    allocBytes(uint64_t bytes)
    {
        if (failAllocs_ > 0) {
            --failAllocs_;
            raise(ErrorCode::ResourceExhausted,
                  "injected allocation failure (%llu bytes requested)",
                  static_cast<unsigned long long>(bytes));
        }
        uint64_t addr = kBase + ((data_.size() + 255) & ~uint64_t{255});
        uint64_t end = addr - kBase + bytes;
        if (budgetBytes_ > 0 && end > budgetBytes_)
            raise(ErrorCode::OutOfMemory,
                  "allocation of %llu bytes exceeds the device memory "
                  "budget (%llu of %llu bytes in use)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(data_.size()),
                  static_cast<unsigned long long>(budgetBytes_));
        data_.resize(end, 0);
        return addr;
    }

    /** Total allocated bytes. */
    uint64_t allocatedBytes() const { return data_.size(); }

    /**
     * Cap the heap at @p bytes (0 = unlimited). Allocations that
     * would grow past the cap throw Error(OutOfMemory); existing
     * allocations are unaffected.
     */
    void setBudgetBytes(uint64_t bytes) { budgetBytes_ = bytes; }

    /** Current budget in bytes (0 = unlimited). */
    uint64_t budgetBytes() const { return budgetBytes_; }

    /**
     * Make the next @p count calls to allocBytes throw
     * Error(ResourceExhausted) — the deterministic alloc-fail fault
     * of the injection harness (allocations happen on the host during
     * setup, so no synchronization is needed).
     */
    void injectAllocFailures(uint32_t count) { failAllocs_ = count; }

    /** Load a T from device address @p addr. */
    template <typename T>
    T
    read(uint64_t addr) const
    {
        checkRange(addr, sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + (addr - kBase), sizeof(T));
        return v;
    }

    /** Store @p v at device address @p addr. */
    template <typename T>
    void
    write(uint64_t addr, T v)
    {
        checkRange(addr, sizeof(T));
        std::memcpy(data_.data() + (addr - kBase), &v, sizeof(T));
    }

    /**
     * Load @p n consecutive Ts starting at @p addr into @p dst: one
     * bounds check and one copy, for callers that detected a
     * contiguous access (a coalesced warp load).
     */
    template <typename T>
    void
    readSpan(uint64_t addr, T *dst, uint32_t n) const
    {
        checkRange(addr, uint64_t(n) * sizeof(T));
        std::memcpy(dst, data_.data() + (addr - kBase),
                    size_t(n) * sizeof(T));
    }

    /** Contiguous-store counterpart of readSpan. */
    template <typename T>
    void
    writeSpan(uint64_t addr, const T *src, uint32_t n)
    {
        checkRange(addr, uint64_t(n) * sizeof(T));
        std::memcpy(data_.data() + (addr - kBase), src,
                    size_t(n) * sizeof(T));
    }

    /** Zero-fill [addr, addr+bytes). */
    void
    zero(uint64_t addr, uint64_t bytes)
    {
        checkRange(addr, bytes);
        std::memset(data_.data() + (addr - kBase), 0, bytes);
    }

    /**
     * Atomic read-modify-write: stores fn(old) at @p addr and returns
     * old. The single device-wide lock serializes RMWs from parallel
     * CTA workers, like the GPU's atomic units; plain loads/stores
     * stay lock-free (concurrent CTAs touching the same non-atomic
     * location are a data race in the source program, as on hardware).
     */
    template <typename T, typename F>
    T
    atomicRmw(uint64_t addr, T operand, F fn)
    {
        std::lock_guard<std::mutex> lock(atomicMu_);
        T old = read<T>(addr);
        write<T>(addr, fn(old, operand));
        return old;
    }

  private:
    void
    checkRange(uint64_t addr, uint64_t bytes) const
    {
        if (addr < kBase || addr - kBase + bytes > data_.size()) {
            panic("global memory access [0x%llx, +%llu) out of bounds "
                  "(%llu bytes allocated)",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(data_.size()));
        }
    }

    std::vector<uint8_t> data_;
    uint64_t budgetBytes_ = 0;  ///< heap cap; 0 = unlimited
    uint32_t failAllocs_ = 0;   ///< injected allocation failures left
    std::mutex atomicMu_;   ///< serializes atomicRmw across CTA workers
};

/**
 * Typed host-side view of a device allocation. Thin handle: copies
 * share the same underlying device memory.
 */
template <typename T>
class Buffer
{
  public:
    Buffer() = default;
    Buffer(GlobalMemory *mem, uint64_t base, size_t count)
        : mem_(mem), base_(base), count_(count)
    {}

    /** Device base address, suitable for KernelParams::push. */
    uint64_t addr() const { return base_; }

    /** Element count. */
    size_t size() const { return count_; }

    /** Host read of element @p i. */
    T
    operator[](size_t i) const
    {
        GWC_ASSERT(i < count_, "buffer index out of range");
        return mem_->read<T>(base_ + i * sizeof(T));
    }

    /** Host write of element @p i. */
    void
    set(size_t i, T v)
    {
        GWC_ASSERT(i < count_, "buffer index out of range");
        mem_->write<T>(base_ + i * sizeof(T), v);
    }

    /** Copy the whole buffer to the host. */
    std::vector<T>
    toHost() const
    {
        std::vector<T> out(count_);
        for (size_t i = 0; i < count_; ++i)
            out[i] = (*this)[i];
        return out;
    }

    /** Copy @p src into the buffer (sizes must match). */
    void
    fromHost(const std::vector<T> &src)
    {
        GWC_ASSERT(src.size() == count_, "host size mismatch");
        for (size_t i = 0; i < count_; ++i)
            set(i, src[i]);
    }

    /** Fill all elements with @p v. */
    void
    fill(T v)
    {
        for (size_t i = 0; i < count_; ++i)
            set(i, v);
    }

  private:
    GlobalMemory *mem_ = nullptr;
    uint64_t base_ = 0;
    size_t count_ = 0;
};

} // namespace gwc::simt

#endif // GWC_SIMT_MEMORY_HH
