/**
 * @file
 * gwc_monitor — live flight deck over a running (or finished)
 * campaign's monitoring outputs.
 *
 *   gwc_monitor [--heartbeat hb.json] [--metrics metrics.jsonl]
 *               [--follow DIR] [--interval SEC] [--once]
 *
 * Tails the heartbeat file and/or metrics JSONL series another gwc
 * tool writes via --heartbeat-out / --metrics-out and renders a
 * compact status view: workloads done/failed/running, CTA and
 * warp-instruction progress with a live instruction rate, process
 * RSS/threads/CPU, thread-pool utilization and a table of in-flight
 * workloads (phase, age, stall flag). The heartbeat is rewritten
 * atomically by the sampler, so a read never observes a torn
 * document. With --once the current state prints once and the exit
 * status is 0; without it the view refreshes every --interval seconds
 * until interrupted. See docs/OBSERVABILITY.md "Live monitoring".
 *
 * --follow DIR watches a whole directory instead of one file: every
 * "*.heartbeat.json" under it (a campaign's sessions, or a gwc_serve
 * state dir with its per-worker heartbeats) is discovered on each
 * refresh — files appearing or vanishing between frames is normal —
 * and rendered as one block per session, stall flags included.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/flatjson.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/monitor.hh"

namespace
{

using namespace gwc;

/** Read a whole file; ok=false when it cannot be opened. */
bool
slurp(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Last two non-empty lines of a JSONL file (newest last). */
std::vector<std::string>
lastLines(const std::string &text, size_t n)
{
    std::vector<std::string> out;
    size_t end = text.size();
    while (end > 0 && out.size() < n) {
        size_t start = text.rfind('\n', end - 1);
        size_t lineStart = start == std::string::npos ? 0 : start + 1;
        std::string line = text.substr(lineStart, end - lineStart);
        if (!line.empty() && line != "\n")
            out.insert(out.begin(), line);
        if (start == std::string::npos)
            break;
        end = start;
    }
    return out;
}

double
num(const FlatJson &j, const std::string &key, double dflt = 0)
{
    auto it = j.nums.find(key);
    return it == j.nums.end() ? dflt : it->second;
}

std::string
str(const FlatJson &j, const std::string &key)
{
    auto it = j.strs.find(key);
    return it == j.strs.end() ? "" : it->second;
}

std::string
human(double v)
{
    if (v >= 1e9)
        return strfmt("%.2fG", v / 1e9);
    if (v >= 1e6)
        return strfmt("%.2fM", v / 1e6);
    if (v >= 1e3)
        return strfmt("%.1fk", v / 1e3);
    return strfmt("%.0f", v);
}

/** One rendering pass; returns false when no input was readable. */
bool
render(const std::string &heartbeatPath, const std::string &metricsPath,
       std::ostream &os)
{
    bool any = false;

    // Newest (and previous) metrics sample, for levels and rates.
    FlatJson cur, prev;
    bool haveCur = false, havePrev = false;
    std::string mtext;
    if (!metricsPath.empty() && slurp(metricsPath, &mtext)) {
        auto lines = lastLines(mtext, 2);
        if (!lines.empty()) {
            cur = parseFlatJson(metricsPath, lines.back());
            haveCur = any = true;
            if (lines.size() > 1) {
                prev = parseFlatJson(metricsPath,
                                     lines[lines.size() - 2]);
                havePrev = true;
            }
        }
    }

    FlatJson hb;
    bool haveHb = false;
    std::string htext;
    if (!heartbeatPath.empty() && slurp(heartbeatPath, &htext)) {
        hb = parseFlatJson(heartbeatPath, htext);
        haveHb = any = true;
    }
    if (!any)
        return false;

    // Prefer the heartbeat for board state (freshest), the metrics
    // series for resources and rates.
    const FlatJson &board = haveHb ? hb : cur;
    std::string runId = str(board, "run_id");
    os << "run " << (runId.empty() ? "?" : runId) << "  sample #"
       << uint64_t(num(board, "seq")) << "  uptime "
       << strfmt("%.1fs", num(board, "uptime_sec")) << "\n";
    os << "workloads  " << uint64_t(num(board, "workloads.done"))
       << " done, " << uint64_t(num(board, "workloads.failed"))
       << " failed, " << uint64_t(num(board, "workloads.running"))
       << " running\n";

    double instrs = num(board, "progress.warp_instrs");
    std::string rate;
    if (haveCur && havePrev) {
        double dt = num(cur, "uptime_sec") - num(prev, "uptime_sec");
        double di = num(cur, "progress.warp_instrs") -
                    num(prev, "progress.warp_instrs");
        if (dt > 0)
            rate = strfmt(" (%s instrs/s)", human(di / dt).c_str());
    }
    os << "progress   " << human(num(board, "progress.ctas"))
       << " ctas, " << human(instrs) << " warp instrs" << rate;
    double age = num(board, "progress.last_event_age_sec", -1);
    if (age >= 0)
        os << strfmt(", last event %.1fs ago", age);
    os << "\n";

    if (haveCur) {
        os << "proc       rss "
           << strfmt("%.1f MiB", num(cur, "proc.rss_kb") / 1024.0)
           << ", " << uint64_t(num(cur, "proc.threads")) << " threads"
           << strfmt(", cpu %.1fs user / %.1fs sys",
                     num(cur, "proc.utime_sec"),
                     num(cur, "proc.stime_sec"))
           << "\n";
        double workers = num(cur, "pool.workers");
        std::string util;
        if (havePrev && workers > 0) {
            double dt =
                num(cur, "uptime_sec") - num(prev, "uptime_sec");
            double dIdle =
                num(cur, "pool.idle_ns") - num(prev, "pool.idle_ns");
            if (dt > 0) {
                double u = 1.0 - dIdle / (workers * dt * 1e9);
                if (u < 0)
                    u = 0;
                if (u > 1)
                    u = 1;
                util = strfmt(", util %.0f%%", u * 100.0);
            }
        }
        os << "pool       " << uint64_t(workers) << " workers" << util
           << ", " << human(num(cur, "pool.tasks")) << " tasks, "
           << human(num(cur, "pool.steals")) << " steals\n";
    }

    // In-flight workload table (heartbeat only: the metrics series
    // carries aggregates, the heartbeat the per-workload rows).
    if (haveHb) {
        Table t({"workload", "phase", "age", "deadline", "state"});
        size_t rows = 0;
        for (size_t i = 0;; ++i) {
            std::string base = "running." + std::to_string(i);
            auto wl = str(hb, base + ".workload");
            if (wl.empty())
                break;
            double soft = num(hb, base + ".soft_deadline_sec");
            t.addRow({wl, str(hb, base + ".phase"),
                      strfmt("%.1fs", num(hb, base + ".age_sec")),
                      soft > 0 ? strfmt("%.0fs", soft) : "-",
                      str(hb, base + ".stalled") == "true"
                          ? "STALLED"
                          : "running"});
            ++rows;
        }
        if (rows > 0) {
            os << "\n";
            t.print(os);
        }
    }
    return true;
}

/**
 * One --follow pass: discover and render every heartbeat under
 * @p dir, one block per session. Returns the number of blocks.
 */
size_t
renderFollow(const std::string &dir, std::ostream &os)
{
    size_t shown = 0;
    for (const auto &path : telemetry::listHeartbeatFiles(dir)) {
        std::ostringstream block;
        try {
            if (!render(path, "", block))
                continue;
        } catch (const Error &) {
            continue; // mid-rewrite or foreign file; next frame wins
        }
        os << (shown ? "\n" : "") << "== " << path << "\n"
           << block.str();
        ++shown;
    }
    return shown;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        std::string heartbeatPath;
        std::string metricsPath;
        std::string followDir;
        double intervalSec = 1.0;
        bool once = false;

        cli::Parser p("gwc_monitor", "[options]");
        p.strOpt("--heartbeat", "", "FILE",
                 "heartbeat JSON written by --heartbeat-out",
                 &heartbeatPath);
        p.strOpt("--metrics", "", "FILE",
                 "metrics JSONL series written by --metrics-out",
                 &metricsPath);
        p.strOpt("--follow", "-f", "DIR",
                 "watch every *.heartbeat.json under DIR (a campaign\n"
                 "or a gwc_serve --state-dir), one block per session",
                 &followDir);
        p.realOpt("--interval", "", "SEC",
                  "refresh cadence (default 1.0)", &intervalSec, 0);
        p.flag("--once", "", "print the current state once and exit",
               &once);
        p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (heartbeatPath.empty() && metricsPath.empty() &&
            followDir.empty())
            raise(ErrorCode::InvalidArgument,
                  "nothing to watch: pass --heartbeat, --metrics "
                  "and/or --follow");

        if (!followDir.empty()) {
            if (once) {
                if (renderFollow(followDir, std::cout) == 0)
                    raise(ErrorCode::IoError,
                          "no heartbeat files readable under %s yet",
                          followDir.c_str());
                return 0;
            }
            while (true) {
                std::ostringstream frame;
                size_t shown = renderFollow(followDir, frame);
                if (shown > 0) {
                    std::cout << "\033[2J\033[H" << frame.str();
                } else {
                    std::cout << "waiting for heartbeats under "
                              << followDir << "...\n";
                }
                std::cout.flush();
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        intervalSec > 0 ? intervalSec : 1.0));
            }
        }

        if (once) {
            if (!render(heartbeatPath, metricsPath, std::cout))
                raise(ErrorCode::IoError,
                      "no monitoring data readable yet (checked %s%s%s)",
                      heartbeatPath.c_str(),
                      (!heartbeatPath.empty() && !metricsPath.empty())
                          ? " and "
                          : "",
                      metricsPath.c_str());
            return 0;
        }

        // Live mode: redraw until interrupted. A missing file is not
        // an error — the campaign may simply not have started yet.
        while (true) {
            std::ostringstream frame;
            if (render(heartbeatPath, metricsPath, frame)) {
                // Clear + home keeps the view stable on ANSI
                // terminals; piped output degrades to frames.
                std::cout << "\033[2J\033[H" << frame.str();
                std::cout.flush();
            } else {
                std::cout << "waiting for monitoring data...\n";
                std::cout.flush();
            }
            std::this_thread::sleep_for(std::chrono::duration<double>(
                intervalSec > 0 ? intervalSec : 1.0));
        }
    });
}
