/**
 * @file
 * gwc_serve — the characterization-as-a-service daemon (the eighth
 * tool; see docs/SERVICE.md).
 *
 *   gwc_serve --socket /run/gwc.sock [--workers N]
 *             [--cache-dir DIR] [--state-dir DIR] ...
 *   gwc_serve --port 0 ...
 *
 * Listens on a Unix-domain socket and/or a loopback TCP port for
 * line-delimited JSON requests (one JobSpec per submit — the exact
 * schema gwc_characterize --print-job emits), runs them through a
 * bounded priority queue over N concurrent runtime::Sessions sharing
 * one result cache, and answers with structured JobResults that are
 * byte-identical to local runs. SIGTERM/SIGINT trigger a graceful
 * drain: queued jobs finish, new submissions are rejected with
 * Unavailable, in-flight responses are written, then the process
 * exits 0.
 */

#include <csignal>
#include <iostream>

#include <poll.h>
#include <unistd.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "service/server.hh"

namespace
{

/** SIGTERM/SIGINT latch polled by the main loop. */
volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        service::ServerConfig cfg;
        uint32_t port = 0;
        bool tcp = false;
        double maxTimeout = 0;

        cli::Parser p("gwc_serve", "[options]");
        p.strOpt("--socket", "-u", "PATH",
                 "listen on a Unix-domain socket at PATH", &cfg.unixSocket);
        p.strOpt("--host", "", "ADDR",
                 "TCP bind address (default 127.0.0.1)", &cfg.host);
        p.uintOpt("--port", "-p", "N",
                  "listen on TCP port N (0 = pick an ephemeral port,\n"
                  "printed on startup)",
                  &port, 0);
        p.flag("--tcp", "", "enable the TCP listener (with --port 0)",
               &tcp);
        p.uintOpt("--workers", "-w", "N",
                  "concurrent job sessions (default 1)", &cfg.workers,
                  1);
        p.sizeOpt("--queue-capacity", "", "N",
                  "queued-job bound; submissions past it are\n"
                  "rejected with resource_exhausted (default 64,\n"
                  "0 = unbounded)",
                  &cfg.queueCapacity, 0);
        p.strOpt("--cache-dir", "", "DIR",
                 "shared result cache served to every job\n"
                 "(docs/CACHING.md)",
                 &cfg.cacheDir);
        p.strOpt("--cache", "", "MODE",
                 "cache mode: rw, ro or off (default rw)",
                 &cfg.cacheMode);
        p.strOpt("--state-dir", "", "DIR",
                 "daemon observability directory: heartbeat, metrics\n"
                 "JSONL, Prometheus exposition and per-worker\n"
                 "heartbeats, live-viewable with gwc_monitor --follow",
                 &cfg.stateDir);
        p.realOpt("--metrics-interval", "", "SEC",
                  "daemon sampler cadence (default 0.5)",
                  &cfg.metricsIntervalSec, 0.01);
        p.uintOpt("--max-session-jobs", "", "N",
                  "clamp a job's intra-session parallelism\n"
                  "(default: hardware threads)",
                  &cfg.maxSessionJobs, 0);
        p.realOpt("--max-timeout", "", "SEC",
                  "per-job wall-clock ceiling: jobs without a timeout\n"
                  "get it, larger requests are clamped (0 = off)",
                  &maxTimeout, 0);
        auto pos = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (!pos.empty())
            raise(ErrorCode::InvalidArgument,
                  "unexpected positional argument: %s", pos[0].c_str());
        cfg.maxTimeoutSec = maxTimeout;
        if (tcp || port > 0)
            cfg.port = int(port);

        service::Server server(std::move(cfg));
        server.start();
        if (server.tcpPort() >= 0)
            std::cout << "gwc_serve listening on "
                      << server.config().host << ":" << server.tcpPort()
                      << "\n";
        if (!server.config().unixSocket.empty())
            std::cout << "gwc_serve listening on "
                      << server.config().unixSocket << "\n";
        std::cout.flush();

        struct sigaction sa = {};
        sa.sa_handler = onSignal;
        sigaction(SIGTERM, &sa, nullptr);
        sigaction(SIGINT, &sa, nullptr);

        while (!gStop)
            ::poll(nullptr, 0, 200);

        inform("draining: %zu queued job(s)",
               server.counters().queueDepth);
        server.stop(/*drain=*/true);
        return 0;
    });
}
