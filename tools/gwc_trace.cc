/**
 * @file
 * gwc_trace — inspect and replay event traces recorded with
 * --trace-out.
 *
 *   gwc_trace summary run.trace
 *   gwc_trace dump [-n N] [--kind K] [--cta N] [--warp N] run.trace
 *   gwc_trace annotate [-n N] [--gks FILE] run.trace
 *   gwc_trace info [-n N] run.trace
 *   gwc_trace replay --collector profile|hotspots [--kernel K]
 *             [--cta-range A:B] [-j N] [-o FILE] [-S N] run.trace
 *
 * summary prints the header, per-kind record counts and a per-kernel
 * table; dump prints records as text, optionally filtered by kind
 * (kernel|cta|instr|mem|branch|barrier), CTA or warp; annotate
 * replays the trace through the per-PC hotspot profiler and prints
 * the top-N PCs per kernel (see gwc_hotspots).
 *
 * info reads only the v3 footer index — chunk count and sizes,
 * compression ratio against the raw v2 encoding, per-kernel and
 * per-chunk event counts — without decoding any payload.
 *
 * replay drives a recorded v3 corpus back through a live collector
 * (docs/OBSERVABILITY.md): chunk groups decode in parallel on -j
 * threads and merge with the engine's shard protocol, so replayed
 * output is byte-identical to the live run. --kernel and --cta-range
 * seek via the index and decode only matching chunks.
 *
 * Exit status: 0 on success; 2 when a replay made progress but hit
 * corruption (partial results are emitted); 1 on any other failure.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "metrics/hotspots.hh"
#include "metrics/profile_io.hh"
#include "metrics/profiler.hh"
#include "telemetry/replay.hh"
#include "telemetry/trace.hh"

#include "trace_util.hh"

namespace
{

using namespace gwc;

/** Accumulates per-kernel record counts during replay. */
class SummaryHook : public simt::ProfilerHook
{
  public:
    struct Row
    {
        uint32_t launches = 0;
        uint64_t ctas = 0;
        uint64_t instrs = 0;
        uint64_t mems = 0;
        uint64_t branches = 0;
        uint64_t barriers = 0;
    };

    void
    kernelBegin(const simt::KernelInfo &info) override
    {
        if (!rows_.count(info.name))
            order_.push_back(info.name);
        cur_ = &rows_[info.name];
        ++cur_->launches;
    }

    void kernelEnd() override { cur_ = nullptr; }
    void ctaBegin(uint32_t) override { if (cur_) ++cur_->ctas; }
    void instr(const simt::InstrEvent &) override
    { if (cur_) ++cur_->instrs; }
    void mem(const simt::MemEvent &) override
    { if (cur_) ++cur_->mems; }
    void branch(const simt::BranchEvent &) override
    { if (cur_) ++cur_->branches; }
    void barrier(uint32_t) override { if (cur_) ++cur_->barriers; }

    const std::vector<std::string> &order() const { return order_; }
    const Row &row(const std::string &name) { return rows_[name]; }

  private:
    std::map<std::string, Row> rows_;
    std::vector<std::string> order_;
    Row *cur_ = nullptr;
};

/** Filtered text printer for dump mode. */
class DumpHook : public simt::ProfilerHook
{
  public:
    uint64_t limit = 0;      ///< 0 = unlimited
    std::string kind;        ///< empty = all
    int64_t cta = -1;        ///< -1 = all
    int64_t warp = -1;       ///< -1 = all

    void
    kernelBegin(const simt::KernelInfo &info) override
    {
        if (!pass("kernel", -1, -1))
            return;
        line() << "kernel_begin " << info.name << " grid=" << info.grid.x
               << '.' << info.grid.y << '.' << info.grid.z
               << " cta=" << info.cta.x << '.' << info.cta.y << '.'
               << info.cta.z << " shared=" << info.sharedBytes << "\n";
    }

    void
    kernelEnd() override
    {
        if (pass("kernel", -1, -1))
            line() << "kernel_end\n";
    }

    void
    ctaBegin(uint32_t ctaLinear) override
    {
        if (pass("cta", int64_t(ctaLinear), -1))
            line() << "cta_begin " << ctaLinear << "\n";
    }

    void
    ctaEnd(uint32_t ctaLinear) override
    {
        if (pass("cta", int64_t(ctaLinear), -1))
            line() << "cta_end " << ctaLinear << "\n";
    }

    void
    instr(const simt::InstrEvent &ev) override
    {
        if (!pass("instr", int64_t(ev.ctaLinear), int64_t(ev.warpId)))
            return;
        line() << "instr " << simt::opClassName(ev.cls)
               << " warp=" << ev.warpId << " cta=" << ev.ctaLinear
               << " active=" << simt::laneCount(ev.active) << "\n";
    }

    void
    mem(const simt::MemEvent &ev) override
    {
        if (!pass("mem", int64_t(ev.ctaLinear), int64_t(ev.warpId)))
            return;
        auto &os = line();
        os << "mem "
           << (ev.space == simt::MemSpace::Shared ? "shared" : "global")
           << (ev.atomic ? " atomic" : ev.store ? " store" : " load")
           << " size=" << uint32_t(ev.accessSize)
           << " warp=" << ev.warpId << " cta=" << ev.ctaLinear
           << " active=" << simt::laneCount(ev.active) << " addr=";
        bool first = true;
        for (uint32_t l = 0; l < simt::kWarpSize; ++l) {
            if (!(ev.active >> l & 1))
                continue;
            os << (first ? "" : ",") << "0x" << std::hex << ev.addr[l]
               << std::dec;
            if (!first)
                break; // first two active lanes are enough context
            first = false;
        }
        if (simt::laneCount(ev.active) > 2)
            os << ",...";
        os << "\n";
    }

    void
    branch(const simt::BranchEvent &ev) override
    {
        if (!pass("branch", -1, int64_t(ev.warpId)))
            return;
        line() << "branch warp=" << ev.warpId
               << " active=" << simt::laneCount(ev.active)
               << " taken=" << simt::laneCount(ev.taken) << "\n";
    }

    void
    barrier(uint32_t warpId) override
    {
        if (pass("barrier", -1, int64_t(warpId)))
            line() << "barrier warp=" << warpId << "\n";
    }

    uint64_t printed() const { return printed_; }

  private:
    bool
    pass(const char *k, int64_t evCta, int64_t evWarp)
    {
        if (limit && printed_ >= limit)
            return false;
        if (!kind.empty() && kind != k)
            return false;
        if (cta >= 0 && evCta != cta)
            return false;
        if (warp >= 0 && evWarp != warp)
            return false;
        return true;
    }

    std::ostream &
    line()
    {
        ++printed_;
        return std::cout;
    }

    uint64_t printed_ = 0;
};

/** Strict decimal parse for the post-parse numeric filters. */
int64_t
parseI64(const std::string &flagName, const std::string &text)
{
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0' || v < 0)
        raise(ErrorCode::InvalidArgument,
              "%s wants a non-negative integer, got '%s'",
              flagName.c_str(), text.c_str());
    return int64_t(v);
}

/** Parse an inclusive "A:B" linear-CTA range. */
void
parseCtaRange(const std::string &text, int64_t *first, int64_t *last)
{
    size_t colon = text.find(':');
    if (colon == std::string::npos)
        raise(ErrorCode::InvalidArgument,
              "--cta-range wants A:B (inclusive), got '%s'",
              text.c_str());
    *first = parseI64("--cta-range", text.substr(0, colon));
    *last = parseI64("--cta-range", text.substr(colon + 1));
    if (*first > *last)
        raise(ErrorCode::InvalidArgument,
              "--cta-range %lld:%lld is empty", (long long)*first,
              (long long)*last);
}

/** "1.5 KiB"-style size for the info tables. */
std::string
fmtBytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB"};
    double v = double(bytes);
    size_t u = 0;
    while (v >= 1024.0 && u + 1 < 4) {
        v /= 1024.0;
        ++u;
    }
    char buf[32];
    if (u == 0)
        std::snprintf(buf, sizeof buf, "%llu B",
                      (unsigned long long)bytes);
    else
        std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
    return buf;
}

/** Index-only corpus stats — never decodes a chunk payload. */
int
cmdInfo(telemetry::TraceReader &reader, const std::string &path,
        bool limitSet, uint64_t limit)
{
    std::cout << path << ": trace v" << reader.version()
              << ", cta sample stride " << reader.ctaSampleStride();
    if (!reader.chunked()) {
        std::cout << "\n  legacy flat stream, "
                  << fmtBytes(reader.fileBytes())
                  << "; no corpus index (re-record with a v3 build "
                     "for chunk stats and seekable replay)\n";
        return 0;
    }
    const telemetry::TraceIndex &idx = reader.index();
    telemetry::TraceCounts counts = idx.counts();
    uint64_t payload = idx.payloadBytes();
    uint64_t raw = idx.rawV2Bytes();
    std::cout << " corpus\n  launches "
              << idx.launches.size() << ", chunks " << idx.chunks.size()
              << ", events " << counts.total() << "\n  payload "
              << fmtBytes(payload) << " in " << fmtBytes(reader.fileBytes())
              << " file; raw v2 equivalent " << fmtBytes(raw);
    if (payload > 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f", double(raw) / payload);
        std::cout << " (" << buf << "x payload compression)";
    }
    std::cout << "\n\n";

    // Per-kernel rollup of the chunk index.
    struct KRow
    {
        uint32_t launches = 0;
        uint64_t chunks = 0, ctas = 0, events = 0;
        uint64_t payload = 0, raw = 0;
    };
    std::map<std::string, KRow> byKernel;
    std::vector<std::string> order;
    for (const auto &l : idx.launches) {
        if (!byKernel.count(l.info.name))
            order.push_back(l.info.name);
        ++byKernel[l.info.name].launches;
    }
    for (const auto &c : idx.chunks) {
        KRow &r = byKernel[idx.launches.at(c.launchIdx).info.name];
        ++r.chunks;
        r.ctas += c.ctaBegins;
        r.events += c.events();
        r.payload += c.payloadBytes;
        r.raw += c.rawBytes;
    }
    Table kt({"kernel", "launches", "chunks", "ctas", "events",
              "payload", "raw v2"});
    for (const auto &name : order) {
        const KRow &r = byKernel[name];
        kt.addRow({name, Table::integer(r.launches),
                   Table::integer(int64_t(r.chunks)),
                   Table::integer(int64_t(r.ctas)),
                   Table::integer(int64_t(r.events)), fmtBytes(r.payload),
                   fmtBytes(r.raw)});
    }
    kt.print(std::cout);

    // Per-chunk (CTA-block granularity) table, -n gated like dump.
    uint64_t show = limitSet ? limit : 10;
    size_t n = show == 0 ? idx.chunks.size()
                         : std::min<size_t>(show, idx.chunks.size());
    std::cout << "\n";
    Table ct({"chunk", "kernel", "ctas", "events", "payload", "raw v2"});
    for (size_t i = 0; i < n; ++i) {
        const auto &c = idx.chunks[i];
        std::string ctas = Table::integer(int64_t(c.firstCta)) + ":" +
                           Table::integer(int64_t(c.lastCta));
        ct.addRow({Table::integer(int64_t(i)),
                   idx.launches.at(c.launchIdx).info.name, ctas,
                   Table::integer(int64_t(c.events())),
                   fmtBytes(c.payloadBytes), fmtBytes(c.rawBytes)});
    }
    ct.print(std::cout);
    if (n < idx.chunks.size())
        std::cout << "... " << idx.chunks.size() - n
                  << " more chunks (-n 0 shows all)\n";
    return 0;
}

/**
 * Shared replay loop: one collector per workload segment so each
 * finalizes under its recorded suite abbrev, exactly like the live
 * per-workload collectors. @p consume runs after each segment
 * completes; on corruption mid-corpus, already-consumed segments
 * stand and the exit status is 2 (0/2/1 contract).
 */
template <typename MakeSink, typename Consume>
int
replaySegments(telemetry::TraceReader &reader,
               const telemetry::ReplayOptions &ropts, MakeSink makeSink,
               Consume consume, telemetry::ReplayStats *totalOut)
{
    telemetry::TraceReplayer rep(reader);
    auto segments = telemetry::workloadSegments(reader.index());
    telemetry::ReplayStats total;
    int ec = 0;
    try {
        for (const auto &seg : segments) {
            auto sink = makeSink();
            telemetry::ReplayStats st = rep.replayRange(
                seg.firstLaunch, seg.lastLaunch, *sink, ropts);
            total.launches += st.launches;
            total.launchesSkipped += st.launchesSkipped;
            total.chunksDecoded += st.chunksDecoded;
            total.chunksSkipped += st.chunksSkipped;
            consume(*sink, seg.workload);
        }
    } catch (const Error &e) {
        if (reader.chunksDecoded() == 0)
            throw; // nothing replayed: fatal, not partial
        warn("%s", e.what());
        warn("replay stopped early; emitting partial results");
        ec = 2;
    }
    *totalOut = total;
    return ec;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        DumpHook dump;
        std::string limitStr, ctaStr, warpStr, gksSpec;
        std::string collector, kernel, ctaRange, outPath;
        unsigned jobs = 1;
        unsigned strideOverride = 0;

        cli::Parser p("gwc_trace",
                      "<summary|dump|annotate|info|replay> [options] "
                      "trace-file");
        p.strOpt("--limit", "-n", "N",
                 "dump: print at most N records; annotate: PCs per\n"
                 "kernel; info: chunks listed (default 10, 0 = all)",
                 &limitStr);
        p.strOpt("--kind", "", "K",
                 "dump: kernel|cta|instr|mem|branch|barrier",
                 &dump.kind);
        p.strOpt("--cta", "", "N",
                 "dump: only records of linear CTA N", &ctaStr);
        p.strOpt("--warp", "", "N",
                 "dump: only records of warp N", &warpStr);
        p.appendOpt("--gks", "", "FILE",
                    "annotate/replay: assemble GKS FILE(s) and show\n"
                    "the source line next to each PC (repeatable)",
                    &gksSpec);
        p.strOpt("--collector", "", "C",
                 "replay: profile|hotspots", &collector);
        p.strOpt("--kernel", "", "NAME",
                 "replay: only launches of kernel NAME (seeks via\n"
                 "the chunk index)", &kernel);
        p.strOpt("--cta-range", "", "A:B",
                 "replay: only linear CTAs A..B inclusive (decodes\n"
                 "only overlapping chunks)", &ctaRange);
        p.uintOpt("--jobs", "-j", "N",
                  "replay: decode N chunk groups in parallel\n"
                  "(default 1; output is identical for any N)", &jobs);
        p.strOpt("--output", "-o", "FILE",
                 "replay profile: write CSV to FILE (default stdout)",
                 &outPath);
        p.uintOpt("--cta-stride", "-S", "N",
                  "replay: collector CTA sample stride (default: the\n"
                  "stride the trace was recorded with)",
                  &strideOverride);
        auto pos = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (pos.size() != 2)
            raise(ErrorCode::InvalidArgument,
                  "expected a command and a trace file (see --help)");
        const std::string &cmd = pos[0];
        const std::string &path = pos[1];

        const bool limitSet = !limitStr.empty();
        if (limitSet)
            dump.limit = uint64_t(parseI64("-n", limitStr));
        if (!ctaStr.empty())
            dump.cta = parseI64("--cta", ctaStr);
        if (!warpStr.empty())
            dump.warp = parseI64("--warp", warpStr);

        telemetry::TraceReader reader(path);

        if (cmd == "info")
            return cmdInfo(reader, path, limitSet, dump.limit);

        if (cmd == "replay") {
            telemetry::ReplayOptions ropts;
            ropts.jobs = jobs > 0 ? jobs : 1;
            ropts.kernel = kernel;
            if (!ctaRange.empty())
                parseCtaRange(ctaRange, &ropts.ctaFirst,
                              &ropts.ctaLast);
            uint32_t stride = strideOverride
                                  ? strideOverride
                                  : reader.ctaSampleStride();
            telemetry::ReplayStats total;
            int ec = 0;
            if (collector == "profile") {
                std::vector<metrics::KernelProfile> rows;
                ec = replaySegments(
                    reader, ropts,
                    [&] {
                        metrics::Profiler::Config pcfg;
                        pcfg.ctaSampleStride = stride;
                        return std::make_unique<metrics::Profiler>(
                            pcfg);
                    },
                    [&](metrics::Profiler &prof,
                        const std::string &workload) {
                        for (auto &r : prof.finalize(workload))
                            rows.push_back(std::move(r));
                    },
                    &total);
                if (outPath.empty())
                    metrics::writeProfilesCsv(std::cout, rows);
                else
                    metrics::saveProfiles(outPath, rows);
            } else if (collector == "hotspots") {
                tools::GksListings listings;
                if (!gksSpec.empty())
                    listings.load(gksSpec);
                size_t topN = limitSet ? size_t(dump.limit) : 10;
                bool first = true;
                ec = replaySegments(
                    reader, ropts,
                    [&] {
                        metrics::HotspotProfiler::Config hcfg;
                        hcfg.ctaSampleStride = stride;
                        return std::make_unique<
                            metrics::HotspotProfiler>(hcfg);
                    },
                    [&](metrics::HotspotProfiler &hot,
                        const std::string &workload) {
                        tools::renderHotspotTables(
                            std::cout, hot.finalize(workload), topN,
                            listings, first);
                    },
                    &total);
            } else {
                raise(ErrorCode::InvalidArgument,
                      "replay wants --collector profile|hotspots "
                      "(got '%s')", collector.c_str());
            }
            if (!outPath.empty())
                inform("replayed %llu launches (%llu filtered out): "
                       "%llu chunks decoded, %llu skipped via index",
                       (unsigned long long)total.launches,
                       (unsigned long long)total.launchesSkipped,
                       (unsigned long long)total.chunksDecoded,
                       (unsigned long long)total.chunksSkipped);
            return ec;
        }

        if (cmd == "dump") {
            tools::replayAll(reader, dump);
            return 0;
        }
        if (cmd == "annotate") {
            tools::GksListings listings;
            if (!gksSpec.empty())
                listings.load(gksSpec);
            metrics::HotspotProfiler hot;
            tools::replayAll(reader, hot);
            size_t topN = limitSet ? size_t(dump.limit) : 10;
            bool first = true;
            tools::renderHotspotTables(std::cout, hot.finalize(""),
                                       topN, listings, first);
            return 0;
        }
        if (cmd != "summary")
            raise(ErrorCode::InvalidArgument,
                  "unknown command '%s' (see --help)", cmd.c_str());

        SummaryHook sum;
        uint64_t orphans = 0;
        telemetry::TraceCounts counts =
            tools::replayAll(reader, sum, &orphans);

        std::cout << path << ": trace v" << reader.version()
                  << ", cta sample stride " << reader.ctaSampleStride()
                  << ", " << counts.total() << " records";
        if (orphans)
            std::cout << " (+" << orphans << " orphaned, skipped)";
        if (reader.chunked())
            std::cout << ", " << reader.index().chunks.size()
                      << " chunks";
        std::cout << "\n\n";

        Table ct({"record", "count"});
        ct.addRow({"kernel_begin",
                   Table::integer(int64_t(counts.kernelBegins))});
        ct.addRow({"kernel_end",
                   Table::integer(int64_t(counts.kernelEnds))});
        ct.addRow({"cta_begin",
                   Table::integer(int64_t(counts.ctaBegins))});
        ct.addRow({"cta_end",
                   Table::integer(int64_t(counts.ctaEnds))});
        ct.addRow({"instr", Table::integer(int64_t(counts.instrs))});
        ct.addRow({"mem", Table::integer(int64_t(counts.mems))});
        ct.addRow({"branch",
                   Table::integer(int64_t(counts.branches))});
        ct.addRow({"barrier",
                   Table::integer(int64_t(counts.barriers))});
        ct.print(std::cout);

        std::cout << "\n";
        Table kt({"kernel", "launches", "ctas", "instrs", "mems",
                  "branches", "barriers"});
        for (const auto &name : sum.order()) {
            const auto &r = sum.row(name);
            kt.addRow({name, Table::integer(r.launches),
                       Table::integer(int64_t(r.ctas)),
                       Table::integer(int64_t(r.instrs)),
                       Table::integer(int64_t(r.mems)),
                       Table::integer(int64_t(r.branches)),
                       Table::integer(int64_t(r.barriers))});
        }
        kt.print(std::cout);
        return 0;
    });
}
