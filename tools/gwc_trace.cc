/**
 * @file
 * gwc_trace — inspect event traces recorded with --trace-out.
 *
 *   gwc_trace summary run.trace
 *   gwc_trace dump [-n N] [--kind K] [--cta N] [--warp N] run.trace
 *   gwc_trace annotate [-n N] run.trace
 *
 * summary prints the header, per-kind record counts and a per-kernel
 * table; dump prints records as text, optionally filtered by kind
 * (kernel|cta|instr|mem|branch|barrier), CTA or warp; annotate
 * replays the trace through the per-PC hotspot profiler and prints
 * the top-N PCs per kernel (see gwc_hotspots). Bad or truncated
 * trace files are fatal (exit 1).
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "metrics/hotspots.hh"
#include "telemetry/trace.hh"

#include "gks_listings.hh"

namespace
{

using namespace gwc;

/** Accumulates per-kernel record counts during replay. */
class SummaryHook : public simt::ProfilerHook
{
  public:
    struct Row
    {
        uint32_t launches = 0;
        uint64_t ctas = 0;
        uint64_t instrs = 0;
        uint64_t mems = 0;
        uint64_t branches = 0;
        uint64_t barriers = 0;
    };

    void
    kernelBegin(const simt::KernelInfo &info) override
    {
        if (!rows_.count(info.name))
            order_.push_back(info.name);
        cur_ = &rows_[info.name];
        ++cur_->launches;
    }

    void kernelEnd() override { cur_ = nullptr; }
    void ctaBegin(uint32_t) override { if (cur_) ++cur_->ctas; }
    void instr(const simt::InstrEvent &) override
    { if (cur_) ++cur_->instrs; }
    void mem(const simt::MemEvent &) override
    { if (cur_) ++cur_->mems; }
    void branch(const simt::BranchEvent &) override
    { if (cur_) ++cur_->branches; }
    void barrier(uint32_t) override { if (cur_) ++cur_->barriers; }

    const std::vector<std::string> &order() const { return order_; }
    const Row &row(const std::string &name) { return rows_[name]; }

  private:
    std::map<std::string, Row> rows_;
    std::vector<std::string> order_;
    Row *cur_ = nullptr;
};

/** Filtered text printer for dump mode. */
class DumpHook : public simt::ProfilerHook
{
  public:
    uint64_t limit = 0;      ///< 0 = unlimited
    std::string kind;        ///< empty = all
    int64_t cta = -1;        ///< -1 = all
    int64_t warp = -1;       ///< -1 = all

    void
    kernelBegin(const simt::KernelInfo &info) override
    {
        if (!pass("kernel", -1, -1))
            return;
        line() << "kernel_begin " << info.name << " grid=" << info.grid.x
               << '.' << info.grid.y << '.' << info.grid.z
               << " cta=" << info.cta.x << '.' << info.cta.y << '.'
               << info.cta.z << " shared=" << info.sharedBytes << "\n";
    }

    void
    kernelEnd() override
    {
        if (pass("kernel", -1, -1))
            line() << "kernel_end\n";
    }

    void
    ctaBegin(uint32_t ctaLinear) override
    {
        if (pass("cta", int64_t(ctaLinear), -1))
            line() << "cta_begin " << ctaLinear << "\n";
    }

    void
    ctaEnd(uint32_t ctaLinear) override
    {
        if (pass("cta", int64_t(ctaLinear), -1))
            line() << "cta_end " << ctaLinear << "\n";
    }

    void
    instr(const simt::InstrEvent &ev) override
    {
        if (!pass("instr", int64_t(ev.ctaLinear), int64_t(ev.warpId)))
            return;
        line() << "instr " << simt::opClassName(ev.cls)
               << " warp=" << ev.warpId << " cta=" << ev.ctaLinear
               << " active=" << simt::laneCount(ev.active) << "\n";
    }

    void
    mem(const simt::MemEvent &ev) override
    {
        if (!pass("mem", int64_t(ev.ctaLinear), int64_t(ev.warpId)))
            return;
        auto &os = line();
        os << "mem "
           << (ev.space == simt::MemSpace::Shared ? "shared" : "global")
           << (ev.atomic ? " atomic" : ev.store ? " store" : " load")
           << " size=" << uint32_t(ev.accessSize)
           << " warp=" << ev.warpId << " cta=" << ev.ctaLinear
           << " active=" << simt::laneCount(ev.active) << " addr=";
        bool first = true;
        for (uint32_t l = 0; l < simt::kWarpSize; ++l) {
            if (!(ev.active >> l & 1))
                continue;
            os << (first ? "" : ",") << "0x" << std::hex << ev.addr[l]
               << std::dec;
            if (!first)
                break; // first two active lanes are enough context
            first = false;
        }
        if (simt::laneCount(ev.active) > 2)
            os << ",...";
        os << "\n";
    }

    void
    branch(const simt::BranchEvent &ev) override
    {
        if (!pass("branch", -1, int64_t(ev.warpId)))
            return;
        line() << "branch warp=" << ev.warpId
               << " active=" << simt::laneCount(ev.active)
               << " taken=" << simt::laneCount(ev.taken) << "\n";
    }

    void
    barrier(uint32_t warpId) override
    {
        if (pass("barrier", -1, int64_t(warpId)))
            line() << "barrier warp=" << warpId << "\n";
    }

    uint64_t printed() const { return printed_; }

  private:
    bool
    pass(const char *k, int64_t evCta, int64_t evWarp)
    {
        if (limit && printed_ >= limit)
            return false;
        if (!kind.empty() && kind != k)
            return false;
        if (cta >= 0 && evCta != cta)
            return false;
        if (warp >= 0 && evWarp != warp)
            return false;
        return true;
    }

    std::ostream &
    line()
    {
        ++printed_;
        return std::cout;
    }

    uint64_t printed_ = 0;
};

/** Strict decimal parse for the post-parse numeric filters. */
int64_t
parseI64(const std::string &flagName, const std::string &text)
{
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0' || v < 0)
        raise(ErrorCode::InvalidArgument,
              "%s wants a non-negative integer, got '%s'",
              flagName.c_str(), text.c_str());
    return int64_t(v);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        DumpHook dump;
        std::string limitStr, ctaStr, warpStr, gksSpec;

        cli::Parser p("gwc_trace",
                      "<summary|dump|annotate> [options] trace-file");
        p.strOpt("--limit", "-n", "N",
                 "dump: print at most N records; annotate: PCs per\n"
                 "kernel (default 10, 0 = all)",
                 &limitStr);
        p.strOpt("--kind", "", "K",
                 "dump: kernel|cta|instr|mem|branch|barrier",
                 &dump.kind);
        p.strOpt("--cta", "", "N",
                 "dump: only records of linear CTA N", &ctaStr);
        p.strOpt("--warp", "", "N",
                 "dump: only records of warp N", &warpStr);
        p.appendOpt("--gks", "", "FILE",
                    "annotate: assemble GKS FILE(s) and show the\n"
                    "source line next to each PC (repeatable)",
                    &gksSpec);
        auto pos = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (pos.size() != 2)
            raise(ErrorCode::InvalidArgument,
                  "expected a command and a trace file (see --help)");
        const std::string &cmd = pos[0];
        const std::string &path = pos[1];

        const bool limitSet = !limitStr.empty();
        if (limitSet)
            dump.limit = uint64_t(parseI64("-n", limitStr));
        if (!ctaStr.empty())
            dump.cta = parseI64("--cta", ctaStr);
        if (!warpStr.empty())
            dump.warp = parseI64("--warp", warpStr);

        telemetry::TraceReader reader(path);

        if (cmd == "dump") {
            uint64_t orphans = 0;
            reader.replay(dump, &orphans);
            if (orphans)
                warn("skipped %llu orphaned leading records",
                     (unsigned long long)orphans);
            return 0;
        }
        if (cmd == "annotate") {
            tools::GksListings listings;
            if (!gksSpec.empty())
                listings.load(gksSpec);
            metrics::HotspotProfiler hot;
            uint64_t orphans = 0;
            reader.replay(hot, &orphans);
            if (orphans)
                warn("skipped %llu orphaned leading records",
                     (unsigned long long)orphans);
            size_t topN = limitSet ? size_t(dump.limit) : 10;
            bool first = true;
            for (const auto &ks : hot.finalize("")) {
                if (!first)
                    std::cout << "\n";
                first = false;
                metrics::renderHotspots(std::cout, ks, topN,
                                        listings.find(ks.kernel));
            }
            return 0;
        }
        if (cmd != "summary")
            raise(ErrorCode::InvalidArgument,
                  "unknown command '%s' (see --help)", cmd.c_str());

        SummaryHook sum;
        uint64_t orphans = 0;
        telemetry::TraceCounts counts = reader.replay(sum, &orphans);

        std::cout << path << ": trace v" << reader.version()
                  << ", cta sample stride " << reader.ctaSampleStride()
                  << ", " << counts.total() << " records";
        if (orphans)
            std::cout << " (+" << orphans << " orphaned, skipped)";
        std::cout << "\n\n";

        Table ct({"record", "count"});
        ct.addRow({"kernel_begin",
                   Table::integer(int64_t(counts.kernelBegins))});
        ct.addRow({"kernel_end",
                   Table::integer(int64_t(counts.kernelEnds))});
        ct.addRow({"cta_begin",
                   Table::integer(int64_t(counts.ctaBegins))});
        ct.addRow({"cta_end",
                   Table::integer(int64_t(counts.ctaEnds))});
        ct.addRow({"instr", Table::integer(int64_t(counts.instrs))});
        ct.addRow({"mem", Table::integer(int64_t(counts.mems))});
        ct.addRow({"branch",
                   Table::integer(int64_t(counts.branches))});
        ct.addRow({"barrier",
                   Table::integer(int64_t(counts.barriers))});
        ct.print(std::cout);

        std::cout << "\n";
        Table kt({"kernel", "launches", "ctas", "instrs", "mems",
                  "branches", "barriers"});
        for (const auto &name : sum.order()) {
            const auto &r = sum.row(name);
            kt.addRow({name, Table::integer(r.launches),
                       Table::integer(int64_t(r.ctas)),
                       Table::integer(int64_t(r.instrs)),
                       Table::integer(int64_t(r.mems)),
                       Table::integer(int64_t(r.branches)),
                       Table::integer(int64_t(r.barriers))});
        }
        kt.print(std::cout);
        return 0;
    });
}
