/**
 * @file
 * Shared trace-tool helpers: one place for the open/replay/warn
 * sequence and the multi-kernel hotspot-table rendering that
 * gwc_trace and gwc_hotspots both use, so the two tools cannot
 * drift apart in output format or orphan handling.
 */

#ifndef GWC_TOOLS_TRACE_UTIL_HH
#define GWC_TOOLS_TRACE_UTIL_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "metrics/hotspots.hh"
#include "telemetry/trace.hh"

#include "gks_listings.hh"

namespace gwc::tools
{

/**
 * Replay a whole trace into @p sink, warning once about leading
 * records orphaned by v2 flight-recorder eviction (v3 corpora evict
 * whole chunks and never orphan).
 */
inline telemetry::TraceCounts
replayAll(telemetry::TraceReader &reader, simt::ProfilerHook &sink,
          uint64_t *orphansOut = nullptr)
{
    uint64_t orphans = 0;
    telemetry::TraceCounts counts = reader.replay(sink, &orphans);
    if (orphans)
        warn("skipped %llu orphaned leading records",
             (unsigned long long)orphans);
    if (orphansOut)
        *orphansOut = orphans;
    return counts;
}

/**
 * Render hotspot tables in the shared multi-kernel format: tables
 * separated by one blank line, each annotated from @p listings.
 * @p first carries the separator state across calls so per-workload
 * batches concatenate identically to one big batch.
 */
inline void
renderHotspotTables(std::ostream &os,
                    const std::vector<metrics::KernelHotspots> &tables,
                    size_t topN, const GksListings &listings,
                    bool &first)
{
    for (const auto &ks : tables) {
        if (!first)
            os << "\n";
        first = false;
        metrics::renderHotspots(os, ks, topN, listings.find(ks.kernel));
    }
}

} // namespace gwc::tools

#endif // GWC_TOOLS_TRACE_UTIL_HH
