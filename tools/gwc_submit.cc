/**
 * @file
 * gwc_submit — client for the gwc_serve daemon (docs/SERVICE.md).
 *
 *   gwc_submit --socket /run/gwc.sock [-o profiles.csv] [workload ...]
 *   gwc_submit --port 41200 --job spec.json
 *   gwc_submit --socket /run/gwc.sock --ping | --server-stats
 *
 * Builds a runtime::JobSpec from the same flag surface as
 * gwc_characterize (or loads one with --job; "-" reads stdin), sends
 * it over the line-delimited JSON protocol and waits for the
 * JobResult. The response's profile CSV — byte-identical to a local
 * gwc_characterize -o run — is written to --output; the process exits
 * with the job's exit code on the documented 0/2/1 contract, so
 * scripting against the daemon feels exactly like running locally.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hh"
#include "common/flatjson.hh"
#include "common/logging.hh"
#include "runtime/jobspec.hh"
#include "service/server.hh"
#include "telemetry/stats.hh"

namespace
{

using namespace gwc;

/** Connect to the daemon (unix socket preferred). Throws on failure. */
int
connectServer(const std::string &unixSocket, const std::string &host,
              int port)
{
    if (!unixSocket.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (unixSocket.size() >= sizeof(addr.sun_path))
            raise(ErrorCode::InvalidArgument,
                  "unix socket path too long: %s", unixSocket.c_str());
        std::strncpy(addr.sun_path, unixSocket.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            raise(ErrorCode::Unavailable, "cannot connect to %s: %s",
                  unixSocket.c_str(), std::strerror(errno));
        return fd;
    }
    if (port < 0)
        raise(ErrorCode::InvalidArgument,
              "no server address: pass --socket PATH or --port N");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    const std::string h = host.empty() ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1)
        raise(ErrorCode::InvalidArgument, "invalid server address: %s",
              h.c_str());
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        raise(ErrorCode::Unavailable, "cannot connect to %s:%d: %s",
              h.c_str(), port, std::strerror(errno));
    return fd;
}

/** One request/response round trip (lines without trailing '\n'). */
std::string
roundTrip(int fd, const std::string &request)
{
    const std::string line = request + "\n";
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            raise(ErrorCode::Unavailable, "send failed: %s",
                  std::strerror(errno));
        }
        off += size_t(n);
    }
    std::string buf;
    char chunk[65536];
    while (buf.find('\n') == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            raise(ErrorCode::Unavailable,
                  "connection closed before a response arrived");
        buf.append(chunk, size_t(n));
    }
    return buf.substr(0, buf.find('\n'));
}

/** Fail like the error-envelope contract: code + message, exit 1. */
[[noreturn]] void
raiseEnvelopeError(const FlatJson &doc)
{
    auto code = doc.strs.find("error_code");
    auto msg = doc.strs.find("error_message");
    raise(ErrorCode::Unavailable, "server error [%s]: %s",
          code == doc.strs.end() ? "?" : code->second.c_str(),
          msg == doc.strs.end() ? "?" : msg->second.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        runtime::JobSpec spec;
        spec.session.tool = "gwc_characterize";
        std::string unixSocket, host;
        uint32_t port = 0;
        bool tcp = false;
        std::string jobFile, id, outPath;
        bool ping = false, serverStats = false;

        cli::Parser p("gwc_submit", "[options] [workload ...]");
        p.strOpt("--socket", "-u", "PATH",
                 "connect to the Unix-domain socket at PATH",
                 &unixSocket);
        p.strOpt("--host", "", "ADDR",
                 "server TCP address (default 127.0.0.1)", &host);
        p.uintOpt("--port", "-p", "N", "server TCP port", &port, 0);
        p.flag("--tcp", "", "use TCP (with --port)", &tcp);
        p.strOpt("--job", "", "FILE",
                 "submit the JobSpec JSON in FILE (\"-\" = stdin)\n"
                 "instead of building one from the flags below",
                 &jobFile);
        p.strOpt("--id", "", "ID", "request id echoed in the response",
                 &id);
        p.strOpt("--output", "-o", "FILE",
                 "write the response's profile CSV to FILE",
                 &outPath);
        p.flag("--ping", "", "health-check the server and exit",
               &ping);
        p.flag("--server-stats", "",
               "print the server's counters JSON and exit",
               &serverStats);
        runtime::addJobSpecFlags(p, spec);
        spec.workloads = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }

        int fd = connectServer(unixSocket, host,
                               (tcp || port > 0) ? int(port) : -1);

        std::ostringstream req;
        if (ping || serverStats) {
            req << "{\"proto\":" << service::kServeProtocolVersion
                << ",\"type\":\"" << (ping ? "ping" : "stats")
                << "\"}";
            std::string response = roundTrip(fd, req.str());
            ::close(fd);
            std::cout << response << "\n";
            FlatJson doc = parseFlatJson("response", response);
            auto type = doc.strs.find("type");
            if (type != doc.strs.end() && type->second == "error")
                raiseEnvelopeError(doc);
            return 0;
        }

        std::string jobJson;
        if (!jobFile.empty()) {
            if (jobFile == "-") {
                std::ostringstream ss;
                ss << std::cin.rdbuf();
                jobJson = ss.str();
            } else {
                std::ifstream is(jobFile);
                if (!is)
                    raise(ErrorCode::NotFound, "cannot open %s",
                          jobFile.c_str());
                std::ostringstream ss;
                ss << is.rdbuf();
                jobJson = ss.str();
            }
            // Parse locally first: reject malformed/newer specs with
            // a client-side error, and re-serialize canonically.
            Result<runtime::JobSpec> parsed =
                runtime::parseJobSpec(jobFile, jobJson);
            if (!parsed.ok())
                throw Error(parsed.status());
            spec = std::move(parsed.value());
        }
        req << "{\"proto\":" << service::kServeProtocolVersion
            << ",\"type\":\"submit\",\"id\":\""
            << telemetry::jsonEscape(id) << "\",\"job\":"
            << spec.toJson() << "}";

        std::string response = roundTrip(fd, req.str());
        ::close(fd);

        FlatJson doc = parseFlatJson("response", response);
        auto type = doc.strs.find("type");
        if (type == doc.strs.end() || type->second == "error")
            raiseEnvelopeError(doc);
        Result<runtime::JobResult> result =
            runtime::parseJobResultFlat(doc, "result");
        if (!result.ok())
            throw Error(result.status());
        const runtime::JobResult &r = result.value();

        for (const auto &row : r.rows) {
            if (row.status == "ok")
                inform("%s: ok%s (%llu warp instrs, %u attempt(s))",
                       row.name.c_str(), row.cached ? " [cached]" : "",
                       (unsigned long long)row.warpInstrs,
                       row.attempts);
            else
                warn("%s: failed in %s [%s]: %s", row.name.c_str(),
                     row.phase.c_str(), row.errorCode.c_str(),
                     row.errorMessage.c_str());
        }
        if (r.exitCode == 1)
            warn("job failed [%s]: %s", r.errorCode.c_str(),
                 r.errorMessage.c_str());
        inform("run %s on %s: exit %d, %.2fs, cache %llu hit(s) / "
               "%llu miss(es)",
               r.runId.c_str(), r.tool.c_str(), r.exitCode, r.wallSec,
               (unsigned long long)r.cacheHits,
               (unsigned long long)r.cacheMisses);
        if (!outPath.empty()) {
            std::ofstream os(outPath, std::ios::trunc);
            if (!os)
                raise(ErrorCode::IoError, "cannot write %s",
                      outPath.c_str());
            os << r.profilesCsv;
            inform("wrote %s", outPath.c_str());
        }
        return r.exitCode;
    });
}
