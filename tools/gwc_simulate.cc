/**
 * @file
 * gwc_simulate — run the timing design space over workloads and
 * print per-kernel IPC and speedups.
 *
 *   gwc_simulate [-s scale] [--jobs N] [--stats-out stats.json]
 *                [--trace-out run.trace]
 *                [--timeline-out timeline.json] [workload ...]
 *
 * Simulates every kernel of the listed workloads (default: all) on
 * the built-in design points (see timing::designSpace()). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the engine event stream for offline replay with gwc_trace
 * (forces the workload loop serial: one recorder cannot watch
 * concurrent engines); --timeline-out writes an execution timeline as
 * Chrome trace-event JSON. --jobs runs workloads concurrently; output
 * rows, reports and stats totals are assembled in workload order,
 * identical to a serial run.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "telemetry/poolstats.hh"
#include "telemetry/report.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace.hh"
#include "timing/gpu.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    using Clock = std::chrono::steady_clock;

    auto wallStart = Clock::now();
    uint32_t scale = 1;
    uint32_t jobs = ThreadPool::defaultJobs();
    std::string statsPath;
    std::string tracePath;
    std::string timelinePath;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-s" && i + 1 < argc) {
            scale = uint32_t(std::atoi(argv[++i]));
            if (scale < 1)
                fatal("scale must be >= 1");
        } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            int v = std::atoi(argv[++i]);
            if (v < 1)
                fatal("--jobs must be >= 1");
            jobs = uint32_t(v);
        } else if (arg == "--stats-out" && i + 1 < argc) {
            statsPath = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (arg == "--timeline-out" && i + 1 < argc) {
            timelinePath = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            std::cerr
                << "usage: gwc_simulate [-s scale] [--jobs N] "
                   "[--stats-out stats.json] [--trace-out run.trace] "
                   "[--timeline-out timeline.json] [workload ...]\n"
                   "  --jobs N, -j N  simulate workloads concurrently; "
                   "output is identical to --jobs 1\n"
                   "                  (default: hardware threads, or "
                   "$GWC_JOBS)\n"
                   "  --trace-out FILE     record the event stream "
                   "(serializes the workload loop)\n"
                   "  --timeline-out FILE  write the execution "
                   "timeline as Chrome trace JSON\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '%s'", arg.c_str());
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = workloads::workloadNames();
    for (const auto &n : names)
        if (!workloads::isWorkload(n))
            (void)workloads::makeWorkload(n); // fatal, with suggestions

    telemetry::Registry stats;
    const bool wantStats = !statsPath.empty();
    telemetry::RunReport rep;
    rep.tool = "gwc_simulate";

    std::unique_ptr<telemetry::TraceWriter> tracer;
    if (!tracePath.empty()) {
        tracer = std::make_unique<telemetry::TraceWriter>(tracePath);
        if (wantStats)
            tracer->attachStats(stats);
    }

    telemetry::Timeline timeline;
    if (!timelinePath.empty())
        timeline.activate();

    auto cfgs = timing::designSpace();
    std::vector<std::string> hdr{"kernel", "instrs",
                                 "ipc@" + cfgs[0].name};
    for (size_t c = 1; c < cfgs.size(); ++c)
        hdr.push_back(cfgs[c].name);
    Table t(hdr);

    // Per-workload results are produced independently (possibly in
    // parallel) and assembled in workload order below, so the table,
    // the report and the stats totals never depend on --jobs.
    struct WlResult
    {
        std::vector<std::vector<std::string>> rows;
        telemetry::WorkloadReport wr;
        std::unique_ptr<telemetry::Registry> reg;
    };
    std::vector<WlResult> results(names.size());

    auto runWl = [&](size_t i) {
        const std::string &name = names[i];
        WlResult &res = results[i];
        res.reg = std::make_unique<telemetry::Registry>();
        auto wl = workloads::makeWorkload(name);
        telemetry::TimelineScope wlSpan("workload", name);
        simt::Engine engine;
        if (wantStats)
            engine.attachStats(*res.reg);
        timing::TraceCapture cap;
        auto t0 = Clock::now();
        {
            telemetry::TimelineScope ts("phase", name + " setup");
            wl->setup(engine, scale);
        }
        auto t1 = Clock::now();
        engine.addHook(&cap);
        if (tracer)
            engine.addHook(tracer.get());
        {
            telemetry::TimelineScope ts("phase", name + " simulate");
            wl->run(engine);
        }
        engine.clearHooks();
        auto t2 = Clock::now();

        std::map<std::string, std::vector<timing::KernelTrace>> by;
        std::vector<std::string> order;
        for (auto &tr : cap.traces()) {
            if (!by.count(tr.name))
                order.push_back(tr.name);
            by[tr.name].push_back(std::move(tr));
        }
        telemetry::WorkloadReport &wr = res.wr;
        wr.name = name;
        wr.setupSec = std::chrono::duration<double>(t1 - t0).count();
        wr.simulateSec =
            std::chrono::duration<double>(t2 - t1).count();
        for (const auto &kname : order) {
            std::vector<timing::SimResult> simres;
            for (const auto &cfg : cfgs)
                simres.push_back(timing::simulateAll(by[kname], cfg));
            std::vector<std::string> row{
                name + "." + kname,
                Table::integer(int64_t(simres[0].instrs)),
                Table::num(simres[0].ipc, 2)};
            for (size_t c = 1; c < cfgs.size(); ++c)
                row.push_back(Table::num(double(simres[0].cycles) /
                                             double(simres[c].cycles),
                                         3));
            res.rows.push_back(std::move(row));

            telemetry::KernelReportRow krow;
            krow.name = kname;
            krow.launches = uint32_t(by[kname].size());
            krow.warpInstrs = simres[0].instrs;
            wr.warpInstrs += simres[0].instrs;
            wr.kernels.push_back(std::move(krow));
        }
    };

    // A trace recorder is one hook object; it cannot watch several
    // engines at once, so --trace-out pins the workload loop serial.
    if (jobs > 1 && names.size() > 1 && !tracer) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(names.size());
        for (size_t i = 0; i < names.size(); ++i)
            tasks.push_back([&runWl, i] { runWl(i); });
        ThreadPool::global().runAll(std::move(tasks), jobs);
    } else {
        for (size_t i = 0; i < names.size(); ++i)
            runWl(i);
    }

    if (tracer) {
        tracer->close();
        inform("wrote %llu trace records to %s",
               (unsigned long long)tracer->recorded().total(),
               tracePath.c_str());
    }
    if (!timelinePath.empty()) {
        // All pool work has joined, so the timeline is quiescent.
        timeline.deactivate();
        std::ofstream os(timelinePath, std::ios::binary);
        if (!os)
            fatal("cannot open %s", timelinePath.c_str());
        timeline.writeChromeTrace(os);
        if (!os)
            fatal("error writing %s", timelinePath.c_str());
        inform("wrote execution timeline to %s", timelinePath.c_str());
    }

    for (auto &res : results) {
        for (auto &row : res.rows)
            t.addRow(row);
        rep.workloads.push_back(std::move(res.wr));
        if (wantStats)
            stats.mergeFrom(*res.reg);
    }
    std::cout << "speedup of each design point vs " << cfgs[0].name
              << " (ipc column is the baseline)\n\n";
    t.print(std::cout);

    if (wantStats) {
        telemetry::recordThreadPoolStats(
            stats, ThreadPool::global().statsSnapshot());
        rep.wallSec = std::chrono::duration<double>(Clock::now() -
                                                    wallStart)
                          .count();
        rep.hookEvents = stats.counterTotal("engine", "ev_fanout");
        telemetry::writeRunReportFile(statsPath, rep, &stats);
        inform("wrote run report to %s", statsPath.c_str());
    }
    return 0;
}
