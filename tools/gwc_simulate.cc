/**
 * @file
 * gwc_simulate — run the timing design space over workloads and
 * print per-kernel IPC and speedups.
 *
 *   gwc_simulate [-s scale] [--jobs N] [--stats-out stats.json]
 *                [--trace-out run.trace]
 *                [--timeline-out timeline.json] [workload ...]
 *
 * Simulates every kernel of the listed workloads (default: all) on
 * the built-in design points (see timing::designSpace()). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the engine event stream for offline replay with gwc_trace
 * (forces the workload loop serial: one recorder cannot watch
 * concurrent engines); --timeline-out writes an execution timeline as
 * Chrome trace-event JSON. --jobs runs workloads concurrently; output
 * rows, reports and stats totals are assembled in workload order,
 * identical to a serial run. The observability wiring (registry,
 * tracer, timeline, report) lives in gwc::runtime::Session; the
 * timing loop below drives engines directly.
 */

#include <chrono>
#include <functional>
#include <iostream>
#include <map>
#include <memory>

#include "common/cli.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "runtime/session.hh"
#include "timing/gpu.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    using Clock = std::chrono::steady_clock;
    return cli::run([&]() -> int {
        runtime::SessionOptions so;
        so.tool = "gwc_simulate";
        so.suite.jobs = ThreadPool::defaultJobs();

        cli::Parser p("gwc_simulate", "[options] [workload ...]");
        p.uintOpt("--scale", "-s", "N", "input-size scale (default 1)",
                  &so.suite.scale, 1);
        p.uintOpt("--jobs", "-j", "N",
                  "simulate workloads concurrently; output is\n"
                  "identical to --jobs 1 (default: hardware\n"
                  "threads, or $GWC_JOBS)",
                  &so.suite.jobs, 1);
        runtime::addObservabilityFlags(p, so);
        auto names = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (names.empty())
            names = workloads::workloadNames();
        if (Status st = workloads::checkWorkloadNames(names); !st.ok())
            throw Error(st);

        const uint32_t scale = so.suite.scale;
        const uint32_t jobs = so.suite.jobs;
        const bool wantStats = !so.statsOut.empty();
        runtime::Session session(std::move(so));
        telemetry::TraceWriter *tracer = session.tracer();

        auto cfgs = timing::designSpace();
        std::vector<std::string> hdr{"kernel", "instrs",
                                     "ipc@" + cfgs[0].name};
        for (size_t c = 1; c < cfgs.size(); ++c)
            hdr.push_back(cfgs[c].name);
        Table t(hdr);

        // Per-workload results are produced independently (possibly
        // in parallel) and assembled in workload order below, so the
        // table, the report and the stats totals never depend on
        // --jobs.
        struct WlResult
        {
            std::vector<std::vector<std::string>> rows;
            telemetry::WorkloadReport wr;
            std::unique_ptr<telemetry::Registry> reg;
        };
        std::vector<WlResult> results(names.size());

        auto runWl = [&](size_t i) {
            const std::string &name = names[i];
            WlResult &res = results[i];
            res.reg = std::make_unique<telemetry::Registry>();
            auto wl = workloads::makeWorkload(name);
            // Session::runSuite posts these itself; a hand-driven
            // timing loop keeps the board (and so the heartbeat)
            // honest by posting its own transitions.
            telemetry::ActivityBoard &board = session.activity();
            const std::string attemptId =
                session.runId() + ":" + name + "#1";
            board.workloadBegin(name, attemptId);
            telemetry::TimelineScope wlSpan("workload", name);
            wlSpan.arg("attempt_id", attemptId);
            simt::Engine engine;
            engine.setActivity(&board);
            if (wantStats)
                engine.attachStats(*res.reg);
            timing::TraceCapture cap;
            auto t0 = Clock::now();
            {
                telemetry::TimelineScope ts("phase", name + " setup");
                wl->setup(engine, scale);
            }
            auto t1 = Clock::now();
            engine.addHook(&cap);
            if (tracer)
                engine.addHook(tracer);
            board.workloadPhase(name, "simulate");
            {
                telemetry::TimelineScope ts("phase",
                                            name + " simulate");
                wl->run(engine);
            }
            engine.clearHooks();
            auto t2 = Clock::now();

            std::map<std::string, std::vector<timing::KernelTrace>> by;
            std::vector<std::string> order;
            for (auto &tr : cap.traces()) {
                if (!by.count(tr.name))
                    order.push_back(tr.name);
                by[tr.name].push_back(std::move(tr));
            }
            telemetry::WorkloadReport &wr = res.wr;
            wr.name = name;
            wr.setupSec =
                std::chrono::duration<double>(t1 - t0).count();
            wr.simulateSec =
                std::chrono::duration<double>(t2 - t1).count();
            for (const auto &kname : order) {
                std::vector<timing::SimResult> simres;
                for (const auto &cfg : cfgs)
                    simres.push_back(
                        timing::simulateAll(by[kname], cfg));
                std::vector<std::string> row{
                    name + "." + kname,
                    Table::integer(int64_t(simres[0].instrs)),
                    Table::num(simres[0].ipc, 2)};
                for (size_t c = 1; c < cfgs.size(); ++c)
                    row.push_back(
                        Table::num(double(simres[0].cycles) /
                                       double(simres[c].cycles),
                                   3));
                res.rows.push_back(std::move(row));

                telemetry::KernelReportRow krow;
                krow.name = kname;
                krow.launches = uint32_t(by[kname].size());
                krow.warpInstrs = simres[0].instrs;
                wr.warpInstrs += simres[0].instrs;
                wr.kernels.push_back(std::move(krow));
            }
            wr.attemptId = attemptId;
            board.workloadEnd(name, true);
        };

        // A trace recorder is one hook object; it cannot watch several
        // engines at once, so --trace-out pins the workload loop
        // serial.
        if (jobs > 1 && names.size() > 1 && !tracer) {
            std::vector<std::function<void()>> tasks;
            tasks.reserve(names.size());
            for (size_t i = 0; i < names.size(); ++i)
                tasks.push_back([&runWl, i] { runWl(i); });
            ThreadPool::global().runAll(std::move(tasks), jobs);
        } else {
            for (size_t i = 0; i < names.size(); ++i)
                runWl(i);
        }

        for (auto &res : results) {
            for (auto &row : res.rows)
                t.addRow(row);
            session.report().workloads.push_back(std::move(res.wr));
            if (wantStats)
                session.stats().mergeFrom(*res.reg);
        }
        std::cout << "speedup of each design point vs " << cfgs[0].name
                  << " (ipc column is the baseline)\n\n";
        t.print(std::cout);

        return session.finish();
    });
}
