/**
 * @file
 * gwc_simulate — run the timing design space over workloads and
 * print per-kernel IPC and speedups.
 *
 *   gwc_simulate [-s scale] [workload ...]
 *
 * Simulates every kernel of the listed workloads (default: all) on
 * the built-in design points (see timing::designSpace()).
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "common/logging.hh"
#include "common/table.hh"
#include "timing/gpu.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;

    uint32_t scale = 1;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-s" && i + 1 < argc) {
            scale = uint32_t(std::atoi(argv[++i]));
            if (scale < 1)
                fatal("scale must be >= 1");
        } else if (arg == "-h" || arg == "--help") {
            std::cerr << "usage: gwc_simulate [-s scale] "
                         "[workload ...]\n";
            return 0;
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = workloads::workloadNames();

    auto cfgs = timing::designSpace();
    std::vector<std::string> hdr{"kernel", "instrs",
                                 "ipc@" + cfgs[0].name};
    for (size_t c = 1; c < cfgs.size(); ++c)
        hdr.push_back(cfgs[c].name);
    Table t(hdr);

    for (const auto &name : names) {
        auto wl = workloads::makeWorkload(name);
        simt::Engine engine;
        timing::TraceCapture cap;
        wl->setup(engine, scale);
        engine.addHook(&cap);
        wl->run(engine);
        engine.clearHooks();

        std::map<std::string, std::vector<timing::KernelTrace>> by;
        std::vector<std::string> order;
        for (auto &tr : cap.traces()) {
            if (!by.count(tr.name))
                order.push_back(tr.name);
            by[tr.name].push_back(std::move(tr));
        }
        for (const auto &kname : order) {
            std::vector<timing::SimResult> res;
            for (const auto &cfg : cfgs)
                res.push_back(timing::simulateAll(by[kname], cfg));
            std::vector<std::string> row{
                name + "." + kname,
                Table::integer(int64_t(res[0].instrs)),
                Table::num(res[0].ipc, 2)};
            for (size_t c = 1; c < cfgs.size(); ++c)
                row.push_back(Table::num(
                    double(res[0].cycles) / double(res[c].cycles),
                    3));
            t.addRow(row);
        }
    }
    std::cout << "speedup of each design point vs " << cfgs[0].name
              << " (ipc column is the baseline)\n\n";
    t.print(std::cout);
    return 0;
}
