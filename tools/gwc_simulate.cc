/**
 * @file
 * gwc_simulate — run the timing design space over workloads and
 * print per-kernel IPC and speedups.
 *
 *   gwc_simulate [-s scale] [--jobs N] [--stats-out stats.json]
 *                [--trace-out run.trace]
 *                [--timeline-out timeline.json] [workload ...]
 *
 * Simulates every kernel of the listed workloads (default: all) on
 * the built-in design points (see timing::designSpace()). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the engine event stream for offline replay with gwc_trace
 * (forces the workload loop serial: one recorder cannot watch
 * concurrent engines); --timeline-out writes an execution timeline as
 * Chrome trace-event JSON. --jobs runs workloads concurrently; output
 * rows, reports and stats totals are assembled in workload order,
 * identical to a serial run. The observability wiring (registry,
 * tracer, timeline, report) lives in gwc::runtime::Session; the
 * timing loop below drives engines directly.
 */

#include <chrono>
#include <functional>
#include <iostream>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "common/cli.hh"
#include "common/fingerprint.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "runtime/jobspec.hh"
#include "runtime/result_cache.hh"
#include "runtime/session.hh"
#include "timing/gpu.hh"

namespace
{

using namespace gwc;

/**
 * Canonical signature of the timing design space: every numeric knob
 * of every design point plus the timing-model version, so editing a
 * latency (or the model) invalidates cached timing tables.
 */
std::string
designSpaceSignature(const std::vector<timing::GpuConfig> &cfgs)
{
    CanonicalKey k("gwc-timing-design v1");
    k.field("model", uint64_t(timing::kTimingModelVersion));
    for (const auto &c : cfgs) {
        k.field("name", c.name);
        k.field("cfg",
                std::vector<uint32_t>{
                    c.numCores, c.maxCtasPerCore, uint32_t(c.sched),
                    c.intLat, c.fpLat, c.sfuLat, c.smemLat,
                    c.branchLat, c.atomicLat, c.l1KB, c.l1Assoc,
                    c.l1HitLat, c.l2KB, c.l2Assoc, c.l2HitLat,
                    c.dramLat, c.txSerializeLat});
        k.field("dram_bpc", strfmt("%.17g", c.dramBytesPerCycle));
    }
    return k.hexDigest();
}

/** Tab-joined cells ("row\t..." line). Cells never contain tabs. */
std::string
joinCells(const std::vector<std::string> &cells)
{
    std::string out;
    for (const auto &c : cells) {
        out.push_back('\t');
        out += c;
    }
    return out;
}

/**
 * Per-workload result: produced independently (possibly in parallel)
 * and assembled in workload order, so the table, the report and the
 * stats totals never depend on --jobs.
 */
struct WlResult
{
    std::vector<std::vector<std::string>> rows;
    telemetry::WorkloadReport wr;
    std::unique_ptr<telemetry::Registry> reg;
};

/** Serialize the cacheable part of @p res (timing blob payload). */
std::string
encodeSimPayload(const WlResult &res)
{
    std::ostringstream os;
    os << "gwc-sim v1\n";
    os << "setup_sec " << strfmt("%.17g", res.wr.setupSec) << '\n';
    os << "simulate_sec " << strfmt("%.17g", res.wr.simulateSec)
       << '\n';
    os << "warp_instrs " << res.wr.warpInstrs << '\n';
    os << "rows " << res.rows.size() << '\n';
    for (const auto &row : res.rows)
        os << "row" << joinCells(row) << '\n';
    os << "kernels " << res.wr.kernels.size() << '\n';
    for (const auto &k : res.wr.kernels)
        os << "kernel\t" << k.name << '\t' << k.launches << '\t'
           << k.warpInstrs << '\n';
    os << "end\n";
    return os.str();
}

/**
 * Parse encodeSimPayload output into @p res (rows + report fields
 * only). False on any malformation — the caller re-simulates.
 */
bool
decodeSimPayload(const std::string &payload, WlResult &res)
{
    std::istringstream is(payload);
    std::string line;
    auto next = [&](const char *prefix, std::string &value) {
        if (!std::getline(is, line))
            return false;
        size_t n = std::strlen(prefix);
        if (line.compare(0, n, prefix) != 0 || line.size() < n + 1 ||
            line[n] != ' ')
            return false;
        value = line.substr(n + 1);
        return true;
    };
    auto splitTabs = [](const std::string &s) {
        std::vector<std::string> cells;
        size_t pos = 0;
        while (true) {
            size_t tab = s.find('\t', pos);
            if (tab == std::string::npos) {
                cells.push_back(s.substr(pos));
                return cells;
            }
            cells.push_back(s.substr(pos, tab - pos));
            pos = tab + 1;
        }
    };

    std::string v;
    if (!std::getline(is, line) || line != "gwc-sim v1")
        return false;
    try {
        if (!next("setup_sec", v))
            return false;
        res.wr.setupSec = std::stod(v);
        if (!next("simulate_sec", v))
            return false;
        res.wr.simulateSec = std::stod(v);
        if (!next("warp_instrs", v))
            return false;
        res.wr.warpInstrs = std::stoull(v);
        if (!next("rows", v))
            return false;
        size_t nRows = std::stoull(v);
        for (size_t i = 0; i < nRows; ++i) {
            if (!std::getline(is, line))
                return false;
            auto cells = splitTabs(line);
            if (cells.size() < 2 || cells[0] != "row")
                return false;
            res.rows.emplace_back(cells.begin() + 1, cells.end());
        }
        if (!next("kernels", v))
            return false;
        size_t nKernels = std::stoull(v);
        for (size_t i = 0; i < nKernels; ++i) {
            if (!std::getline(is, line))
                return false;
            auto cells = splitTabs(line);
            if (cells.size() != 4 || cells[0] != "kernel")
                return false;
            telemetry::KernelReportRow k;
            k.name = cells[1];
            k.launches = uint32_t(std::stoul(cells[2]));
            k.warpInstrs = std::stoull(cells[3]);
            res.wr.kernels.push_back(std::move(k));
        }
    } catch (const std::exception &) {
        return false;
    }
    return std::getline(is, line) && line == "end";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;
    using Clock = std::chrono::steady_clock;
    return cli::run([&]() -> int {
        // argv parses into the same versioned JobSpec the gwc_serve
        // wire schema uses (--print-job emits it); the hand-driven
        // timing loop below then builds its Session through it.
        runtime::JobSpec spec;
        spec.session.tool = "gwc_simulate";
        spec.session.suite.jobs = ThreadPool::defaultJobs();
        bool printJob = false;

        cli::Parser p("gwc_simulate", "[options] [workload ...]");
        p.uintOpt("--scale", "-s", "N", "input-size scale (default 1)",
                  &spec.session.suite.scale, 1);
        p.uintOpt("--jobs", "-j", "N",
                  "simulate workloads concurrently; output is\n"
                  "identical to --jobs 1 (default: hardware\n"
                  "threads, or $GWC_JOBS)",
                  &spec.session.suite.jobs, 1);
        runtime::addObservabilityFlags(p, spec.session);
        runtime::addCacheFlags(p, spec.session);
        p.flag("--print-job", "",
               "print the job spec JSON (the gwc_serve wire schema)\n"
               "and exit without running",
               &printJob);
        spec.workloads = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (printJob) {
            std::cout << spec.toJson() << "\n";
            return 0;
        }
        std::vector<std::string> names = spec.workloads;
        if (names.empty())
            names = workloads::workloadNames();
        if (Status st = workloads::checkWorkloadNames(names); !st.ok())
            throw Error(st);

        const uint32_t scale = spec.session.suite.scale;
        const uint32_t jobs = spec.session.suite.jobs;
        const bool wantStats = !spec.session.statsOut.empty();
        runtime::Session session(spec.toSessionOptions());
        telemetry::TraceWriter *tracer = session.tracer();
        runtime::ResultCache *cache = session.cache();

        auto cfgs = timing::designSpace();
        const std::string designSig = designSpaceSignature(cfgs);
        std::vector<std::string> hdr{"kernel", "instrs",
                                     "ipc@" + cfgs[0].name};
        for (size_t c = 1; c < cfgs.size(); ++c)
            hdr.push_back(cfgs[c].name);
        Table t(hdr);

        std::vector<WlResult> results(names.size());

        // A trace recorder must observe real launches, so --trace-out
        // bypasses the cache entirely. Timing entries are addressed
        // by workload + scale + the design-space signature; the stats
        // snapshot rides in a sibling entry ("part=stats") so a
        // --stats-out rerun restores byte-identical engine counters.
        auto keyFor = [&](const std::string &name,
                          bool statsPart) {
            runtime::WorkloadKey key;
            key.workload = name;
            key.scale = scale;
            key.verify = false;   // this tool runs no verification
            key.collectors = "timing";
            key.extra.emplace_back("design", designSig);
            if (statsPart)
                key.extra.emplace_back("part", "stats");
            return key;
        };

        auto runWl = [&](size_t i) {
            const std::string &name = names[i];
            WlResult &res = results[i];
            res.reg = std::make_unique<telemetry::Registry>();
            const bool tryCache = cache != nullptr && !tracer;
            if (cache && tracer)
                cache->noteBypass();
            const std::string attemptId =
                session.runId() + ":" + name + "#1";
            telemetry::ActivityBoard &board = session.activity();
            if (tryCache) {
                auto blob =
                    cache->lookupBlob(keyFor(name, false), "timing");
                if (blob) {
                    std::optional<runtime::CachedWorkloadResult> st;
                    bool usable = true;
                    if (wantStats) {
                        st = cache->lookupWorkload(keyFor(name, true));
                        usable = st.has_value();
                    }
                    WlResult cachedRes;
                    if (usable &&
                        decodeSimPayload(*blob, cachedRes)) {
                        res.rows = std::move(cachedRes.rows);
                        res.wr = std::move(cachedRes.wr);
                        res.wr.name = name;
                        res.wr.cached = true;
                        res.wr.attemptId = attemptId;
                        board.workloadBegin(name, attemptId);
                        board.workloadEnd(name, true);
                        if (st)
                            st->stats.restore(*res.reg);
                        return;
                    }
                }
            }
            auto wl = workloads::makeWorkload(name);
            // Session::runSuite posts these itself; a hand-driven
            // timing loop keeps the board (and so the heartbeat)
            // honest by posting its own transitions.
            board.workloadBegin(name, attemptId);
            telemetry::TimelineScope wlSpan("workload", name);
            wlSpan.arg("attempt_id", attemptId);
            simt::Engine engine;
            engine.setActivity(&board);
            // Attached even without --stats-out when a cache fill may
            // follow: the admitted stats entry must be complete.
            if (wantStats || tryCache)
                engine.attachStats(*res.reg);
            timing::TraceCapture cap;
            auto t0 = Clock::now();
            {
                telemetry::TimelineScope ts("phase", name + " setup");
                wl->setup(engine, scale);
            }
            auto t1 = Clock::now();
            engine.addHook(&cap);
            if (tracer)
                engine.addHook(tracer);
            board.workloadPhase(name, "simulate");
            {
                telemetry::TimelineScope ts("phase",
                                            name + " simulate");
                wl->run(engine);
            }
            engine.clearHooks();
            auto t2 = Clock::now();

            std::map<std::string, std::vector<timing::KernelTrace>> by;
            std::vector<std::string> order;
            for (auto &tr : cap.traces()) {
                if (!by.count(tr.name))
                    order.push_back(tr.name);
                by[tr.name].push_back(std::move(tr));
            }
            telemetry::WorkloadReport &wr = res.wr;
            wr.name = name;
            wr.setupSec =
                std::chrono::duration<double>(t1 - t0).count();
            wr.simulateSec =
                std::chrono::duration<double>(t2 - t1).count();
            for (const auto &kname : order) {
                std::vector<timing::SimResult> simres;
                for (const auto &cfg : cfgs)
                    simres.push_back(
                        timing::simulateAll(by[kname], cfg));
                std::vector<std::string> row{
                    name + "." + kname,
                    Table::integer(int64_t(simres[0].instrs)),
                    Table::num(simres[0].ipc, 2)};
                for (size_t c = 1; c < cfgs.size(); ++c)
                    row.push_back(
                        Table::num(double(simres[0].cycles) /
                                       double(simres[c].cycles),
                                   3));
                res.rows.push_back(std::move(row));

                telemetry::KernelReportRow krow;
                krow.name = kname;
                krow.launches = uint32_t(by[kname].size());
                krow.warpInstrs = simres[0].instrs;
                wr.warpInstrs += simres[0].instrs;
                wr.kernels.push_back(std::move(krow));
            }
            wr.attemptId = attemptId;
            board.workloadEnd(name, true);

            if (tryCache &&
                cache->mode() == runtime::CacheMode::ReadWrite) {
                cache->storeBlob(keyFor(name, false), "timing",
                                 encodeSimPayload(res));
                runtime::CachedWorkloadResult cr;
                cr.abbrev = name;
                cr.stats =
                    runtime::StatsSnapshot::capture(*res.reg);
                cache->storeWorkload(keyFor(name, true), cr);
            }
        };

        // A trace recorder is one hook object; it cannot watch several
        // engines at once, so --trace-out pins the workload loop
        // serial.
        if (jobs > 1 && names.size() > 1 && !tracer) {
            std::vector<std::function<void()>> tasks;
            tasks.reserve(names.size());
            for (size_t i = 0; i < names.size(); ++i)
                tasks.push_back([&runWl, i] { runWl(i); });
            ThreadPool::global().runAll(std::move(tasks), jobs);
        } else {
            for (size_t i = 0; i < names.size(); ++i)
                runWl(i);
        }

        for (auto &res : results) {
            for (auto &row : res.rows)
                t.addRow(row);
            session.report().workloads.push_back(std::move(res.wr));
            if (wantStats)
                session.stats().mergeFrom(*res.reg);
        }
        std::cout << "speedup of each design point vs " << cfgs[0].name
                  << " (ipc column is the baseline)\n\n";
        t.print(std::cout);

        return session.finish();
    });
}
