/**
 * @file
 * gwc_hotspots — run workloads under the per-PC hotspot profiler and
 * print perf-annotate-style tables of the hottest PCs per kernel.
 *
 *   gwc_hotspots [-s scale] [-S ctaStride] [-n topN] [--jobs N]
 *                [--no-verify] [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. For
 * native-C++ kernels a PC is the dynamic warp-instruction index (see
 * Warp::setPc); GKS kernels carry true static PCs. Tables are
 * bit-identical for any --jobs (the collector shards per CTA block
 * like the characterization profiler).
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "metrics/hotspots.hh"
#include "workloads/suite.hh"

namespace
{

void
usage()
{
    std::cerr
        << "usage: gwc_hotspots [options] [workload ...]\n"
           "  -s N            input-size scale (default 1)\n"
           "  -S N            profile every Nth CTA only (default 1)\n"
           "  -n N            PCs shown per kernel (default 10, 0 = "
           "all)\n"
           "  --jobs N, -j N  worker threads for CTA blocks; tables\n"
           "                  are bit-identical to --jobs 1 (default:\n"
           "                  hardware threads, or $GWC_JOBS)\n"
           "  --no-verify     skip host-reference verification\n"
           "  --list          list registered workloads and exit\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;

    workloads::SuiteOptions opts;
    opts.jobs = ThreadPool::defaultJobs();
    size_t topN = 10;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-s" && i + 1 < argc) {
            opts.scale = uint32_t(std::atoi(argv[++i]));
            if (opts.scale < 1)
                fatal("scale must be >= 1");
        } else if (arg == "-S" && i + 1 < argc) {
            opts.ctaSampleStride = uint32_t(std::atoi(argv[++i]));
            if (opts.ctaSampleStride < 1)
                fatal("CTA stride must be >= 1");
        } else if (arg == "-n" && i + 1 < argc) {
            topN = size_t(std::atoll(argv[++i]));
        } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                fatal("--jobs must be >= 1");
            opts.jobs = uint32_t(jobs);
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--list") {
            for (const auto &n : workloads::workloadNames())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = workloads::workloadNames();
    for (const auto &n : names)
        if (!workloads::isWorkload(n))
            (void)workloads::makeWorkload(n); // fatal, with suggestions

    // One collector per workload: an extraHook observes a single
    // engine, so the workload loop runs serially here (CTA blocks of
    // each launch still run on --jobs threads via sharding).
    bool first = true;
    for (const auto &name : names) {
        metrics::HotspotProfiler::Config hcfg;
        hcfg.ctaSampleStride = opts.ctaSampleStride;
        metrics::HotspotProfiler hot(hcfg);
        workloads::SuiteOptions wopts = opts;
        wopts.extraHook = &hot;
        auto runs = workloads::runSuite({name}, wopts);
        auto tables = hot.finalize(runs.at(0).desc.abbrev);
        for (const auto &ks : tables) {
            if (!first)
                std::cout << "\n";
            first = false;
            metrics::renderHotspots(std::cout, ks, topN);
        }
    }
    return 0;
}
