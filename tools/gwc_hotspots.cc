/**
 * @file
 * gwc_hotspots — run workloads under the per-PC hotspot profiler and
 * print perf-annotate-style tables of the hottest PCs per kernel.
 *
 *   gwc_hotspots [-s scale] [-S ctaStride] [-n topN] [--jobs N]
 *                [--no-verify] [--inject kind@workload[:count]]
 *                [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. For
 * native-C++ kernels a PC is the dynamic warp-instruction index (see
 * Warp::setPc); GKS kernels carry true static PCs. Tables are
 * bit-identical for any --jobs (the collector shards per CTA block
 * like the characterization profiler). A workload that fails under
 * the execution guard is skipped and makes the exit status 2
 * (docs/ROBUSTNESS.md); --fail-fast aborts on it instead.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/threadpool.hh"
#include "metrics/hotspots.hh"
#include "runtime/session.hh"

#include "trace_util.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        runtime::SessionOptions so;
        so.suite.jobs = ThreadPool::defaultJobs();
        size_t topN = 10;
        bool list = false;
        std::string gksSpec;

        cli::Parser p("gwc_hotspots", "[options] [workload ...]");
        p.sizeOpt("--top", "-n", "N",
                  "PCs shown per kernel (default 10, 0 = all)", &topN);
        p.strOpt("--gks", "", "FILE",
                 "assemble GKS FILE(s, comma-separated) and show the\n"
                 "source line next to each PC of matching kernels",
                 &gksSpec);
        runtime::addSuiteFlags(p, so);
        p.flag("--list", "", "list registered workloads and exit",
               &list);
        auto names = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (list) {
            for (const auto &n : workloads::workloadNames())
                std::cout << n << "\n";
            return 0;
        }
        if (names.empty())
            names = workloads::workloadNames();
        if (Status st = workloads::checkWorkloadNames(names); !st.ok())
            throw Error(st);

        tools::GksListings listings;
        if (!gksSpec.empty())
            listings.load(gksSpec);

        runtime::InjectionPlan plan;
        if (!so.injectSpecs.empty()) {
            Status st = plan.addSpecs(so.injectSpecs);
            if (!st.ok())
                throw Error(st);
            so.suite.inject = &plan;
        }

        // One collector per workload: an extraHook observes a single
        // engine, so the workload loop runs serially here (CTA blocks
        // of each launch still run on --jobs threads via sharding).
        int ec = 0;
        bool first = true;
        for (const auto &name : names) {
            metrics::HotspotProfiler::Config hcfg;
            hcfg.ctaSampleStride = so.suite.ctaSampleStride;
            metrics::HotspotProfiler hot(hcfg);
            workloads::SuiteOptions wopts = so.suite;
            wopts.extraHook = &hot;
            auto runs = workloads::runSuite({name}, wopts);
            if (runs.at(0).failed()) {
                // runSuite already warned; keep going, flag the exit.
                ec = 2;
                continue;
            }
            tools::renderHotspotTables(
                std::cout, hot.finalize(runs.at(0).desc.abbrev), topN,
                listings, first);
        }
        return ec;
    });
}
