/**
 * @file
 * gwc_hotspots — run workloads under the per-PC hotspot profiler and
 * print perf-annotate-style tables of the hottest PCs per kernel.
 *
 *   gwc_hotspots [-s scale] [-S ctaStride] [-n topN] [--jobs N]
 *                [--no-verify] [--inject kind@workload[:count]]
 *                [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. For
 * native-C++ kernels a PC is the dynamic warp-instruction index (see
 * Warp::setPc); GKS kernels carry true static PCs. Tables are
 * bit-identical for any --jobs (the collector shards per CTA block
 * like the characterization profiler). A workload that fails under
 * the execution guard is skipped and makes the exit status 2
 * (docs/ROBUSTNESS.md); --fail-fast aborts on it instead.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/fingerprint.hh"
#include "common/threadpool.hh"
#include "metrics/hotspots.hh"
#include "runtime/result_cache.hh"
#include "runtime/session.hh"

#include "trace_util.hh"

namespace
{

/**
 * Digest of the --gks listings: source text changes the annotation
 * column of the rendered tables, so it is a cache-key dimension.
 * Missing files hash as empty (GksListings::load reports them).
 */
std::string
gksSourceDigest(const std::string &gksSpec)
{
    if (gksSpec.empty())
        return "";
    uint64_t h = gwc::fnv1a64(gksSpec);
    size_t pos = 0;
    while (pos <= gksSpec.size()) {
        size_t comma = gksSpec.find(',', pos);
        if (comma == std::string::npos)
            comma = gksSpec.size();
        std::string path = gksSpec.substr(pos, comma - pos);
        if (!path.empty()) {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream ss;
            ss << in.rdbuf();
            h = gwc::fnv1a64(ss.str(), h);
        }
        pos = comma + 1;
    }
    return gwc::hex64(h);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        runtime::SessionOptions so;
        so.suite.jobs = ThreadPool::defaultJobs();
        size_t topN = 10;
        bool list = false;
        std::string gksSpec;

        cli::Parser p("gwc_hotspots", "[options] [workload ...]");
        p.sizeOpt("--top", "-n", "N",
                  "PCs shown per kernel (default 10, 0 = all)", &topN);
        p.strOpt("--gks", "", "FILE",
                 "assemble GKS FILE(s, comma-separated) and show the\n"
                 "source line next to each PC of matching kernels",
                 &gksSpec);
        runtime::addSuiteFlags(p, so);
        p.flag("--list", "", "list registered workloads and exit",
               &list);
        auto names = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (list) {
            for (const auto &n : workloads::workloadNames())
                std::cout << n << "\n";
            return 0;
        }
        if (names.empty())
            names = workloads::workloadNames();
        if (Status st = workloads::checkWorkloadNames(names); !st.ok())
            throw Error(st);

        tools::GksListings listings;
        if (!gksSpec.empty())
            listings.load(gksSpec);

        runtime::InjectionPlan plan;
        if (!so.injectSpecs.empty()) {
            Status st = plan.addSpecs(so.injectSpecs);
            if (!st.ok())
                throw Error(st);
            so.suite.inject = &plan;
        }

        // The suite-level cache cannot serve hotspot runs (the
        // collector is an extra hook that must observe real
        // launches), so this tool caches its own artifact instead:
        // the rendered per-workload table text, keyed like a workload
        // entry plus the topN and --gks source dimensions.
        std::unique_ptr<runtime::ResultCache> cache;
        if (!so.cacheDir.empty()) {
            auto mode = runtime::parseCacheMode(so.cacheMode);
            if (!mode.ok())
                throw Error(mode.status());
            if (mode.value() != runtime::CacheMode::Off)
                cache = std::make_unique<runtime::ResultCache>(
                    runtime::ResultCache::Config{so.cacheDir,
                                                 mode.value()});
        }
        const std::string gksHash = gksSourceDigest(gksSpec);

        // One collector per workload: an extraHook observes a single
        // engine, so the workload loop runs serially here (CTA blocks
        // of each launch still run on --jobs threads via sharding).
        int ec = 0;
        bool first = true;
        for (const auto &name : names) {
            runtime::WorkloadKey key;
            key.workload = name;
            key.scale = so.suite.scale;
            key.verify = so.suite.verify;
            key.ctaSampleStride = so.suite.ctaSampleStride;
            key.collectors = "hotspots";
            key.gksSourceHash = gksHash;
            key.extra.emplace_back("top_n", std::to_string(topN));

            const bool bypass =
                so.suite.inject && so.suite.inject->targets(name);
            std::string text;
            bool served = false;
            if (cache && !bypass) {
                if (auto blob = cache->lookupBlob(key, "hotspots")) {
                    text = std::move(*blob);
                    served = true;
                }
            } else if (cache) {
                cache->noteBypass();
            }
            if (!served) {
                metrics::HotspotProfiler::Config hcfg;
                hcfg.ctaSampleStride = so.suite.ctaSampleStride;
                metrics::HotspotProfiler hot(hcfg);
                workloads::SuiteOptions wopts = so.suite;
                wopts.extraHook = &hot;
                auto runs = workloads::runSuite({name}, wopts);
                if (runs.at(0).failed()) {
                    // runSuite already warned; keep going, flag the
                    // exit. Failed runs are never admitted.
                    ec = 2;
                    continue;
                }
                std::ostringstream os;
                bool f = true;   // separators are applied at print time
                tools::renderHotspotTables(
                    os, hot.finalize(runs.at(0).desc.abbrev), topN,
                    listings, f);
                text = os.str();
                if (cache && !bypass &&
                    cache->mode() == runtime::CacheMode::ReadWrite)
                    cache->storeBlob(key, "hotspots", text);
            }
            if (!text.empty()) {
                if (!first)
                    std::cout << "\n";
                first = false;
                std::cout << text;
            }
        }
        if (cache) {
            const auto &c = cache->counters();
            inform("cache: %llu hits, %llu misses, %llu stale, %llu "
                   "bypassed, %llu admitted (%s, %s)",
                   (unsigned long long)c.hits.load(),
                   (unsigned long long)c.misses.load(),
                   (unsigned long long)c.stale.load(),
                   (unsigned long long)c.bypassed.load(),
                   (unsigned long long)c.admitted.load(),
                   runtime::cacheModeName(cache->mode()),
                   cache->dir().c_str());
        }
        return ec;
    });
}
