/**
 * @file
 * gwc_cache — inspect and maintain a result-cache directory
 * (docs/CACHING.md).
 *
 *   gwc_cache info   --cache-dir DIR
 *   gwc_cache verify --cache-dir DIR [--evict]
 *   gwc_cache gc     --cache-dir DIR --max-bytes N
 *
 * info lists every entry (kind, size, validity) with totals; verify
 * additionally checks each payload against its stored checksum and
 * exits 2 when any entry is corrupt (--evict removes the corrupt ones
 * first, like a rw run would on lookup); gc removes orphaned temp
 * files and evicts oldest-first until the cache fits --max-bytes.
 * Exit contract: 0 clean, 2 corruption found (verify), 1 fatal
 * (unusable arguments, unreadable directory).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "runtime/result_cache.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        std::string dir;
        size_t maxBytes = 0;
        bool evict = false;

        cli::Parser p("gwc_cache",
                      "info|verify|gc --cache-dir DIR [options]");
        p.strOpt("--cache-dir", "", "DIR",
                 "result cache directory to operate on", &dir);
        p.sizeOpt("--max-bytes", "", "N",
                  "gc: evict oldest entries until the cache\n"
                  "holds at most N bytes (default 0 = empty it)",
                  &maxBytes);
        p.flag("--evict", "",
               "verify: remove the corrupt entries found",
               &evict);
        auto args = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (args.size() != 1)
            raise(ErrorCode::InvalidArgument,
                  "expected exactly one subcommand: info, verify or "
                  "gc");
        const std::string &cmd = args[0];
        if (cmd != "info" && cmd != "verify" && cmd != "gc")
            raise(ErrorCode::InvalidArgument,
                  "unknown subcommand '%s' (expected info, verify or "
                  "gc)", cmd.c_str());
        if (dir.empty())
            raise(ErrorCode::InvalidArgument,
                  "--cache-dir is required");

        if (cmd == "gc") {
            auto [removed, freed] =
                runtime::ResultCache::gc(dir, maxBytes);
            std::cout << "gc: removed " << removed << " file"
                      << (removed == 1 ? "" : "s") << ", freed "
                      << freed << " bytes\n";
            return 0;
        }

        // info: header-only validation; verify: deep (checksum).
        const bool deep = cmd == "verify";
        auto entries = runtime::ResultCache::scan(dir, deep);
        Table t({"key", "kind", "bytes", "state"});
        uint64_t bytes = 0, corrupt = 0;
        for (const auto &e : entries) {
            bytes += e.fileBytes;
            if (!e.valid)
                ++corrupt;
            t.addRow({e.key, e.kind.empty() ? "?" : e.kind,
                      Table::integer(int64_t(e.fileBytes)),
                      e.valid ? "ok" : e.error});
        }
        t.print(std::cout);
        std::cout << entries.size() << " entr"
                  << (entries.size() == 1 ? "y" : "ies") << ", "
                  << bytes << " bytes, " << corrupt << " corrupt\n";

        if (deep && corrupt && evict) {
            uint64_t removed = 0;
            for (const auto &e : entries)
                if (!e.valid && std::remove(e.path.c_str()) == 0)
                    ++removed;
            inform("evicted %llu corrupt entr%s",
                   (unsigned long long)removed,
                   removed == 1 ? "y" : "ies");
        }
        return deep && corrupt ? 2 : 0;
    });
}
