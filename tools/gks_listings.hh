/**
 * @file
 * Shared --gks support for the PC-annotation tools (gwc_hotspots,
 * gwc_trace annotate): assemble GKS source files and hand out the
 * per-kernel source listing keyed by kernel name.
 *
 * Events always carry *source* static PCs — the bytecode executor
 * stamps every fused superinstruction's constituents with their
 * original PCs through AsmKernel::pcMap() — so resolving a hotspot
 * table only needs the source listing; no translation pass runs
 * here.
 */

#ifndef GWC_TOOLS_GKS_LISTINGS_HH
#define GWC_TOOLS_GKS_LISTINGS_HH

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "simt/asm.hh"

namespace gwc::tools
{

/** Per-kernel source listings from one or more assembled GKS files. */
class GksListings
{
  public:
    /**
     * Assemble every file in the comma-separated @p spec (the
     * appendOpt accumulation format). Unreadable files and assembly
     * errors are fatal (InvalidArgument, with the GKS line:column
     * diagnostic).
     */
    void
    load(const std::string &spec)
    {
        std::stringstream ss(spec);
        std::string path;
        while (std::getline(ss, path, ',')) {
            if (path.empty())
                continue;
            std::ifstream in(path);
            if (!in)
                raise(ErrorCode::InvalidArgument,
                      "--gks: cannot read '%s'", path.c_str());
            std::stringstream src;
            src << in.rdbuf();
            simt::AsmKernel k = simt::assembleKernel(src.str());
            byName_[k.name()] = k.listing();
        }
    }

    /** Listing for @p kernel, or nullptr if no --gks file defines it. */
    const std::vector<std::string> *
    find(const std::string &kernel) const
    {
        auto it = byName_.find(kernel);
        return it == byName_.end() ? nullptr : &it->second;
    }

    bool empty() const { return byName_.empty(); }

  private:
    std::map<std::string, std::vector<std::string>> byName_;
};

} // namespace gwc::tools

#endif // GWC_TOOLS_GKS_LISTINGS_HH
