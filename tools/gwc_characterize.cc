/**
 * @file
 * gwc_characterize — run workloads under the characterization
 * profiler and write the kernel profiles to a CSV.
 *
 *   gwc_characterize [-o profiles.csv] [-s scale] [-S ctaStride]
 *                    [--jobs N] [--stats-out stats.json]
 *                    [--trace-out run.trace]
 *                    [--timeline-out timeline.json] [--no-verify]
 *                    [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. The CSV
 * loads back with gwc_analyze or metrics::loadProfiles(). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the event stream for offline replay with gwc_trace;
 * --timeline-out writes an execution timeline as Chrome trace-event
 * JSON (open in chrome://tracing or Perfetto).
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "metrics/profile_io.hh"
#include "telemetry/poolstats.hh"
#include "telemetry/report.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace.hh"
#include "workloads/suite.hh"

namespace
{

void
usage()
{
    std::cerr
        << "usage: gwc_characterize [options] [workload ...]\n"
           "  -o FILE           output CSV (default: profiles.csv)\n"
           "  -s N              input-size scale (default 1)\n"
           "  -S N              profile every Nth CTA only (default 1)\n"
           "  --jobs N, -j N    worker threads: workloads and CTA\n"
           "                    blocks run concurrently; profiles are\n"
           "                    bit-identical to --jobs 1 (default:\n"
           "                    hardware threads, or $GWC_JOBS)\n"
           "  --batch N         event-dispatch batch capacity; output\n"
           "                    is identical for any N (default 512)\n"
           "  --stats-out FILE  write run report + stats registry JSON\n"
           "  --trace-out FILE  record the event stream to a trace\n"
           "  --trace-stride N  trace every Nth CTA only (default 1)\n"
           "  --trace-buffer N  trace staging buffer, MiB (default 4)\n"
           "  --trace-flight    keep newest window instead of flushing\n"
           "  --timeline-out FILE  write the execution timeline as\n"
           "                    Chrome trace-event JSON\n"
           "  --no-verify       skip host-reference verification\n"
           "  --list            list registered workloads and exit\n";
}

std::string
geometryString(const gwc::simt::Dim3 &grid, const gwc::simt::Dim3 &cta)
{
    std::ostringstream os;
    os << grid.x << '.' << grid.y << '.' << grid.z << '/' << cta.x
       << '.' << cta.y << '.' << cta.z;
    return os.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;
    using Clock = std::chrono::steady_clock;

    auto wallStart = Clock::now();
    std::string outPath = "profiles.csv";
    std::string statsPath;
    std::string tracePath;
    std::string timelinePath;
    telemetry::TraceWriter::Config tcfg;
    workloads::SuiteOptions opts;
    opts.verbose = true;
    opts.jobs = ThreadPool::defaultJobs();
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "-s" && i + 1 < argc) {
            opts.scale = uint32_t(std::atoi(argv[++i]));
            if (opts.scale < 1)
                fatal("scale must be >= 1");
        } else if (arg == "-S" && i + 1 < argc) {
            opts.ctaSampleStride = uint32_t(std::atoi(argv[++i]));
            if (opts.ctaSampleStride < 1)
                fatal("CTA stride must be >= 1");
        } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                fatal("--jobs must be >= 1");
            opts.jobs = uint32_t(jobs);
        } else if (arg == "--batch" && i + 1 < argc) {
            int batch = std::atoi(argv[++i]);
            if (batch < 1)
                fatal("--batch must be >= 1");
            opts.eventBatch = size_t(batch);
        } else if (arg == "--stats-out" && i + 1 < argc) {
            statsPath = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (arg == "--trace-stride" && i + 1 < argc) {
            tcfg.ctaSampleStride = uint32_t(std::atoi(argv[++i]));
            if (tcfg.ctaSampleStride < 1)
                fatal("trace stride must be >= 1");
        } else if (arg == "--trace-buffer" && i + 1 < argc) {
            int mib = std::atoi(argv[++i]);
            if (mib < 1)
                fatal("trace buffer must be >= 1 MiB");
            tcfg.bufferBytes = size_t(mib) << 20;
        } else if (arg == "--trace-flight") {
            tcfg.flightRecorder = true;
        } else if (arg == "--timeline-out" && i + 1 < argc) {
            timelinePath = argv[++i];
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--list") {
            for (const auto &n : workloads::workloadNames()) {
                auto wl = workloads::makeWorkload(n);
                std::cout << n << "\t" << wl->desc().suite << "\t"
                          << wl->desc().name << "\n";
            }
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else {
            names.push_back(arg);
        }
    }

    // Validate names up front so a typo fails before any work runs
    // (makeWorkload would also be fatal, but only mid-suite).
    for (const auto &n : names)
        if (!workloads::isWorkload(n))
            (void)workloads::makeWorkload(n); // fatal, with suggestions

    telemetry::Registry stats;
    const bool wantStats = !statsPath.empty();
    if (wantStats || !tracePath.empty())
        opts.stats = &stats;

    std::unique_ptr<telemetry::TraceWriter> tracer;
    if (!tracePath.empty()) {
        tracer =
            std::make_unique<telemetry::TraceWriter>(tracePath, tcfg);
        tracer->attachStats(stats);
        opts.extraHook = tracer.get();
    }

    telemetry::Timeline timeline;
    if (!timelinePath.empty())
        timeline.activate();

    auto runs = workloads::runSuite(names, opts);

    if (!timelinePath.empty()) {
        // runSuite has joined all pool work, so the timeline is
        // quiescent and safe to export.
        timeline.deactivate();
        std::ofstream os(timelinePath, std::ios::binary);
        if (!os)
            fatal("cannot open %s", timelinePath.c_str());
        timeline.writeChromeTrace(os);
        if (!os)
            fatal("error writing %s", timelinePath.c_str());
        inform("wrote execution timeline to %s", timelinePath.c_str());
    }

    auto profiles = workloads::allProfiles(runs);
    metrics::saveProfiles(outPath, profiles);
    inform("wrote %zu kernel profiles to %s", profiles.size(),
           outPath.c_str());

    if (tracer) {
        tracer->close();
        inform("wrote %llu trace records to %s",
               (unsigned long long)tracer->recorded().total(),
               tracePath.c_str());
    }

    if (wantStats) {
        telemetry::recordThreadPoolStats(
            stats, ThreadPool::global().statsSnapshot());
        telemetry::RunReport rep;
        rep.tool = "gwc_characterize";
        rep.wallSec = std::chrono::duration<double>(Clock::now() -
                                                    wallStart)
                          .count();
        rep.hookEvents = stats.counterTotal("engine", "ev_fanout");
        for (const auto &run : runs) {
            telemetry::WorkloadReport wr;
            wr.name = run.desc.abbrev;
            wr.verified = run.verified;
            wr.setupSec = run.setupSec;
            wr.simulateSec = run.simulateSec;
            wr.profileSec = run.profileSec;
            wr.verifySec = run.verifySec;
            wr.warpInstrs = run.totals.warpInstrs;
            for (const auto &p : run.profiles) {
                telemetry::KernelReportRow row;
                row.name = p.kernel;
                row.launches = p.launches;
                row.warpInstrs = p.warpInstrs;
                row.geometry = geometryString(p.grid, p.cta);
                wr.kernels.push_back(std::move(row));
            }
            rep.workloads.push_back(std::move(wr));
        }
        telemetry::writeRunReportFile(statsPath, rep, &stats);
        inform("wrote run report to %s", statsPath.c_str());
    }
    return 0;
}
