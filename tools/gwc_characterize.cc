/**
 * @file
 * gwc_characterize — run workloads under the characterization
 * profiler and write the kernel profiles to a CSV.
 *
 *   gwc_characterize [-o profiles.csv] [-s scale] [-S ctaStride]
 *                    [--no-verify] [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. The CSV
 * loads back with gwc_analyze or metrics::loadProfiles().
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "metrics/profile_io.hh"
#include "workloads/suite.hh"

namespace
{

void
usage()
{
    std::cerr
        << "usage: gwc_characterize [options] [workload ...]\n"
           "  -o FILE      output CSV (default: profiles.csv)\n"
           "  -s N         input-size scale (default 1)\n"
           "  -S N         profile every Nth CTA only (default 1)\n"
           "  --no-verify  skip host-reference verification\n"
           "  --list       list registered workloads and exit\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace gwc;

    std::string outPath = "profiles.csv";
    workloads::SuiteOptions opts;
    opts.verbose = true;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "-s" && i + 1 < argc) {
            opts.scale = uint32_t(std::atoi(argv[++i]));
            if (opts.scale < 1)
                fatal("scale must be >= 1");
        } else if (arg == "-S" && i + 1 < argc) {
            opts.ctaSampleStride = uint32_t(std::atoi(argv[++i]));
            if (opts.ctaSampleStride < 1)
                fatal("CTA stride must be >= 1");
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--list") {
            for (const auto &n : workloads::workloadNames()) {
                auto wl = workloads::makeWorkload(n);
                std::cout << n << "\t" << wl->desc().suite << "\t"
                          << wl->desc().name << "\n";
            }
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else {
            names.push_back(arg);
        }
    }

    auto runs = workloads::runSuite(names, opts);
    auto profiles = workloads::allProfiles(runs);
    metrics::saveProfiles(outPath, profiles);
    inform("wrote %zu kernel profiles to %s", profiles.size(),
           outPath.c_str());
    return 0;
}
