/**
 * @file
 * gwc_characterize — run workloads under the characterization
 * profiler and write the kernel profiles to a CSV.
 *
 *   gwc_characterize [-o profiles.csv] [-s scale] [-S ctaStride]
 *                    [--jobs N] [--stats-out stats.json]
 *                    [--trace-out run.trace]
 *                    [--timeline-out timeline.json] [--no-verify]
 *                    [--inject kind@workload[:count]] [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. The CSV
 * loads back with gwc_analyze or metrics::loadProfiles(). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the event stream for offline replay with gwc_trace;
 * --timeline-out writes an execution timeline as Chrome trace-event
 * JSON (open in chrome://tracing or Perfetto).
 *
 * Failed workloads are recorded and skipped (exit 2 — see
 * docs/ROBUSTNESS.md); --fail-fast restores abort-on-first-failure.
 *
 * Since the service PR this tool is a flag table over
 * runtime::JobSpec — the same versioned request the gwc_serve daemon
 * accepts over the wire (--print-job emits it), so a local run and a
 * submitted run are provably the same surface. Execution goes through
 * runtime::runJobLocally(), the path the daemon workers share.
 */

#include <iostream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "runtime/jobspec.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        runtime::JobSpec spec;
        spec.session.tool = "gwc_characterize";
        spec.session.suite.verbose = true;
        spec.session.suite.jobs = ThreadPool::defaultJobs();
        spec.profilesOut = "profiles.csv";
        bool list = false;
        bool printJob = false;

        cli::Parser p("gwc_characterize", "[options] [workload ...]");
        p.strOpt("--output", "-o", "FILE",
                 "output CSV (default: profiles.csv)",
                 &spec.profilesOut);
        runtime::addJobSpecFlags(p, spec);
        p.flag("--print-job", "",
               "print the job spec JSON (the gwc_serve wire schema)\n"
               "and exit without running",
               &printJob);
        p.flag("--list", "", "list registered workloads and exit",
               &list);
        spec.workloads = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (list) {
            for (const auto &n : workloads::workloadNames()) {
                auto wl = workloads::makeWorkload(n);
                std::cout << n << "\t" << wl->desc().suite << "\t"
                          << wl->desc().name << "\n";
            }
            return 0;
        }
        if (printJob) {
            std::cout << spec.toJson() << "\n";
            return 0;
        }

        runtime::JobResult result = runtime::runJobLocally(spec);
        if (result.exitCode == 1)
            fatal("%s", result.errorMessage.c_str());
        return result.exitCode;
    });
}
