/**
 * @file
 * gwc_characterize — run workloads under the characterization
 * profiler and write the kernel profiles to a CSV.
 *
 *   gwc_characterize [-o profiles.csv] [-s scale] [-S ctaStride]
 *                    [--jobs N] [--stats-out stats.json]
 *                    [--trace-out run.trace]
 *                    [--timeline-out timeline.json] [--no-verify]
 *                    [--inject kind@workload[:count]] [workload ...]
 *
 * With no workloads listed, the whole registered suite runs. The CSV
 * loads back with gwc_analyze or metrics::loadProfiles(). --stats-out
 * writes the run report JSON (see docs/OBSERVABILITY.md); --trace-out
 * records the event stream for offline replay with gwc_trace;
 * --timeline-out writes an execution timeline as Chrome trace-event
 * JSON (open in chrome://tracing or Perfetto).
 *
 * Failed workloads are recorded and skipped (exit 2 — see
 * docs/ROBUSTNESS.md); --fail-fast restores abort-on-first-failure.
 * All of the heavy lifting lives in gwc::runtime::Session; this file
 * is only the flag table.
 */

#include <iostream>

#include "common/cli.hh"
#include "common/threadpool.hh"
#include "runtime/session.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        runtime::SessionOptions so;
        so.tool = "gwc_characterize";
        so.suite.verbose = true;
        so.suite.jobs = ThreadPool::defaultJobs();
        std::string outPath = "profiles.csv";
        bool list = false;

        cli::Parser p("gwc_characterize", "[options] [workload ...]");
        p.strOpt("--output", "-o", "FILE",
                 "output CSV (default: profiles.csv)", &outPath);
        runtime::addSuiteFlags(p, so);
        runtime::addObservabilityFlags(p, so);
        p.flag("--list", "", "list registered workloads and exit",
               &list);
        auto names = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (list) {
            for (const auto &n : workloads::workloadNames()) {
                auto wl = workloads::makeWorkload(n);
                std::cout << n << "\t" << wl->desc().suite << "\t"
                          << wl->desc().name << "\n";
            }
            return 0;
        }

        runtime::Session session(std::move(so));
        session.runSuite(names);
        session.writeProfiles(outPath);
        return session.finish();
    });
}
