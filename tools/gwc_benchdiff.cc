/**
 * @file
 * gwc_benchdiff — compare two benchmark JSON files (BENCH_*.json)
 * and flag regressions.
 *
 *   gwc_benchdiff [--threshold PCT] baseline.json candidate.json
 *
 * Both files are flattened to dotted numeric leaves
 * ("suite_wall_clock_sec.jobs_4"); string and boolean leaves are
 * ignored. For every key present in both files the relative change is
 * printed; changes worse than --threshold percent (default 5) are
 * flagged and make the exit status 1. Direction is inferred from the
 * key name: "*per_sec*" / "*items*" / "*ops*" count as
 * higher-is-better, everything else (seconds, ns, cycles, bytes) as
 * lower-is-better. Run-report JSON (--stats-out) also diffs cleanly;
 * files declaring a schema_version newer than this build understands
 * are rejected rather than misread (see docs/ROBUSTNESS.md).
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/flatjson.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

namespace
{

using namespace gwc;

std::map<std::string, double>
loadBench(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise(ErrorCode::IoError, "cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    // The comparison is numeric only; string/bool leaves are dropped.
    auto leaves = parseFlatJson(path, ss.str()).nums;
    // Run-report JSON carries a schema_version leaf; refuse files
    // written by a newer tool rather than comparing misread keys.
    auto it = leaves.find("schema_version");
    if (it != leaves.end() &&
        it->second > double(telemetry::kReportSchemaVersion))
        raise(ErrorCode::InvalidArgument,
              "%s declares report schema v%d, newer than this build "
              "understands (v%d); regenerate it or upgrade the tools",
              path.c_str(), int(it->second),
              telemetry::kReportSchemaVersion);
    return leaves;
}

/** True when a larger value of @p key is an improvement. */
bool
higherIsBetter(const std::string &key)
{
    return key.find("per_sec") != std::string::npos ||
           key.find("items") != std::string::npos ||
           key.find("ops") != std::string::npos ||
           key.find("throughput") != std::string::npos;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        double thresholdPct = 5.0;
        bool allowMissing = false;

        cli::Parser p("gwc_benchdiff",
                      "[options] baseline.json candidate.json");
        p.realOpt("--threshold", "", "PCT",
                  "flag changes worse than PCT percent (default 5);\n"
                  "any flagged regression makes the exit status 1",
                  &thresholdPct, 0.0);
        p.flag("--allow-missing", "",
               "a missing baseline file is a warning and exit 0\n"
               "instead of an error — first runs of a new\n"
               "benchmark have nothing to compare against",
               &allowMissing);
        auto paths = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (paths.size() != 2)
            raise(ErrorCode::InvalidArgument,
                  "expected exactly two files (baseline, candidate)");

        if (allowMissing &&
            !std::ifstream(paths[0], std::ios::binary)) {
            warn("baseline %s does not exist; nothing to compare "
                 "(--allow-missing)", paths[0].c_str());
            return 0;
        }
        auto base = loadBench(paths[0]);
        auto cand = loadBench(paths[1]);

        Table t(
            {"metric", "baseline", "candidate", "change", "status"});
        size_t regressions = 0, improvements = 0, compared = 0;
        for (const auto &[key, bv] : base) {
            auto it = cand.find(key);
            if (it == cand.end())
                continue;
            ++compared;
            double cv = it->second;
            double deltaPct =
                bv != 0.0 ? (cv - bv) / bv * 100.0
                          : (cv == 0.0 ? 0.0 : 100.0);
            bool higher = higherIsBetter(key);
            // Positive badness = candidate is worse.
            double badness = higher ? -deltaPct : deltaPct;
            std::string status = "ok";
            if (badness > thresholdPct) {
                status = "REGRESSION";
                ++regressions;
            } else if (badness < -thresholdPct) {
                status = "improved";
                ++improvements;
            }
            t.addRow({key, Table::num(bv, 3), Table::num(cv, 3),
                      gwc::strfmt("%+.1f%%", deltaPct), status});
        }
        t.print(std::cout);

        for (const auto &[key, v] : cand)
            if (!base.count(key))
                std::cout << "new metric: " << key << " = "
                          << Table::num(v, 3) << "\n";
        for (const auto &[key, v] : base)
            if (!cand.count(key))
                std::cout << "dropped metric: " << key
                          << " (baseline " << Table::num(v, 3)
                          << ")\n";

        std::cout << compared << " metrics compared, " << regressions
                  << " regression" << (regressions == 1 ? "" : "s")
                  << ", " << improvements << " improvement"
                  << (improvements == 1 ? "" : "s") << " (threshold "
                  << thresholdPct << "%)\n";
        return regressions ? 1 : 0;
    });
}
