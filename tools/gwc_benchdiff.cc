/**
 * @file
 * gwc_benchdiff — compare two benchmark JSON files (BENCH_*.json)
 * and flag regressions.
 *
 *   gwc_benchdiff [--threshold PCT] baseline.json candidate.json
 *
 * Both files are flattened to dotted numeric leaves
 * ("suite_wall_clock_sec.jobs_4"); string and boolean leaves are
 * ignored. For every key present in both files the relative change is
 * printed; changes worse than --threshold percent (default 5) are
 * flagged and make the exit status 1. Direction is inferred from the
 * key name: "*per_sec*" / "*items*" / "*ops*" count as
 * higher-is-better, everything else (seconds, ns, cycles, bytes) as
 * lower-is-better. Run-report JSON (--stats-out) also diffs cleanly;
 * files declaring a schema_version newer than this build understands
 * are rejected rather than misread (see docs/ROBUSTNESS.md).
 */

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

namespace
{

using namespace gwc;

/**
 * Minimal recursive-descent JSON walker collecting numeric leaves
 * under dotted paths. Arrays index as ".0", ".1", ... Strings,
 * booleans and nulls are parsed (the syntax must be valid) but not
 * collected. Raises DataLoss, naming @p path, on malformed input.
 */
class FlatJsonParser
{
  public:
    FlatJsonParser(std::string path, std::string text)
        : path_(std::move(path)), s_(std::move(text))
    {
    }

    std::map<std::string, double>
    parse()
    {
        skipWs();
        value("");
        skipWs();
        if (pos_ != s_.size())
            die("trailing characters");
        return std::move(leaves_);
    }

  private:
    [[noreturn]] void
    die(const char *what)
    {
        raise(ErrorCode::DataLoss, "%s: invalid JSON at byte %zu: %s",
              path_.c_str(), pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            die("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            die("unexpected character");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                die("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    die("unterminated escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u':
                    // Keys never need non-ASCII here; keep the code
                    // point's hex digits as a placeholder.
                    for (int i = 0; i < 4 && pos_ < s_.size(); ++i)
                        out += s_[pos_++];
                    break;
                default: die("bad escape");
                }
            } else {
                out += c;
            }
        }
    }

    void
    value(const std::string &key)
    {
        switch (peek()) {
        case '{': {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                skipWs();
                std::string k = parseString();
                skipWs();
                expect(':');
                skipWs();
                value(key.empty() ? k : key + "." + k);
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return;
            }
        }
        case '[': {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            size_t idx = 0;
            while (true) {
                skipWs();
                value(key + "." + std::to_string(idx++));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return;
            }
        }
        case '"':
            parseString();
            return;
        case 't':
            literal("true");
            return;
        case 'f':
            literal("false");
            return;
        case 'n':
            literal("null");
            return;
        default: {
            size_t start = pos_;
            if (peek() == '-')
                ++pos_;
            while (pos_ < s_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '.' || s_[pos_] == 'e' ||
                    s_[pos_] == 'E' || s_[pos_] == '+' ||
                    s_[pos_] == '-'))
                ++pos_;
            if (pos_ == start)
                die("expected a value");
            leaves_[key] = std::atof(s_.substr(start, pos_ - start)
                                         .c_str());
            return;
        }
        }
    }

    void
    literal(const char *lit)
    {
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                die("bad literal");
            ++pos_;
        }
    }

    std::string path_;
    std::string s_;
    size_t pos_ = 0;
    std::map<std::string, double> leaves_;
};

std::map<std::string, double>
loadBench(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise(ErrorCode::IoError, "cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    auto leaves = FlatJsonParser(path, ss.str()).parse();
    // Run-report JSON carries a schema_version leaf; refuse files
    // written by a newer tool rather than comparing misread keys.
    auto it = leaves.find("schema_version");
    if (it != leaves.end() &&
        it->second > double(telemetry::kReportSchemaVersion))
        raise(ErrorCode::InvalidArgument,
              "%s declares report schema v%d, newer than this build "
              "understands (v%d); regenerate it or upgrade the tools",
              path.c_str(), int(it->second),
              telemetry::kReportSchemaVersion);
    return leaves;
}

/** True when a larger value of @p key is an improvement. */
bool
higherIsBetter(const std::string &key)
{
    return key.find("per_sec") != std::string::npos ||
           key.find("items") != std::string::npos ||
           key.find("ops") != std::string::npos ||
           key.find("throughput") != std::string::npos;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return cli::run([&]() -> int {
        double thresholdPct = 5.0;

        cli::Parser p("gwc_benchdiff",
                      "[options] baseline.json candidate.json");
        p.realOpt("--threshold", "", "PCT",
                  "flag changes worse than PCT percent (default 5);\n"
                  "any flagged regression makes the exit status 1",
                  &thresholdPct, 0.0);
        auto paths = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (paths.size() != 2)
            raise(ErrorCode::InvalidArgument,
                  "expected exactly two files (baseline, candidate)");

        auto base = loadBench(paths[0]);
        auto cand = loadBench(paths[1]);

        Table t(
            {"metric", "baseline", "candidate", "change", "status"});
        size_t regressions = 0, improvements = 0, compared = 0;
        for (const auto &[key, bv] : base) {
            auto it = cand.find(key);
            if (it == cand.end())
                continue;
            ++compared;
            double cv = it->second;
            double deltaPct =
                bv != 0.0 ? (cv - bv) / bv * 100.0
                          : (cv == 0.0 ? 0.0 : 100.0);
            bool higher = higherIsBetter(key);
            // Positive badness = candidate is worse.
            double badness = higher ? -deltaPct : deltaPct;
            std::string status = "ok";
            if (badness > thresholdPct) {
                status = "REGRESSION";
                ++regressions;
            } else if (badness < -thresholdPct) {
                status = "improved";
                ++improvements;
            }
            t.addRow({key, Table::num(bv, 3), Table::num(cv, 3),
                      gwc::strfmt("%+.1f%%", deltaPct), status});
        }
        t.print(std::cout);

        for (const auto &[key, v] : cand)
            if (!base.count(key))
                std::cout << "new metric: " << key << " = "
                          << Table::num(v, 3) << "\n";
        for (const auto &[key, v] : base)
            if (!cand.count(key))
                std::cout << "dropped metric: " << key
                          << " (baseline " << Table::num(v, 3)
                          << ")\n";

        std::cout << compared << " metrics compared, " << regressions
                  << " regression" << (regressions == 1 ? "" : "s")
                  << ", " << improvements << " improvement"
                  << (improvements == 1 ? "" : "s") << " (threshold "
                  << thresholdPct << "%)\n";
        return regressions ? 1 : 0;
    });
}
