/**
 * @file
 * gwc_analyze — run the paper's analysis pipeline over saved
 * profiles: PCA, dendrogram, BIC k-means, representatives and
 * per-subspace stress rankings.
 *
 *   gwc_analyze [-k K] [-c coverage] profiles.csv
 *
 * The CSV comes from gwc_characterize; both the current versioned
 * format (`# gwc-profile v2`) and legacy headerless v1 files load.
 * Files written by a newer tool version are rejected with a clear
 * message rather than misread (see docs/ROBUSTNESS.md).
 */

#include <iostream>
#include <string>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "evalmetrics/evalmetrics.hh"
#include "metrics/profile_io.hh"
#include "stats/pca.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;
    return cli::run([&]() -> int {
        uint32_t forcedK = 0;
        double coverage = 0.90;

        cli::Parser p("gwc_analyze", "[options] profiles.csv");
        p.uintOpt("--clusters", "-k", "K",
                  "force the cluster count (default: BIC selection)",
                  &forcedK);
        p.realOpt("--coverage", "-c", "FRAC",
                  "PCA variance coverage to keep (default 0.90)",
                  &coverage, 0.0);
        auto pos = p.parse(argc, argv);
        if (p.helpRequested()) {
            std::cout << p.helpText();
            return 0;
        }
        if (p.versionRequested()) {
            std::cout << p.versionText();
            return 0;
        }
        if (pos.empty())
            raise(ErrorCode::InvalidArgument,
                  "no profile CSV given (see --help)");
        if (pos.size() > 1)
            raise(ErrorCode::InvalidArgument,
                  "expected one profile CSV, got %zu positional "
                  "arguments", pos.size());
        const std::string &path = pos[0];

        auto profiles = metrics::loadProfiles(path);
        if (profiles.size() < 3)
            raise(ErrorCode::InvalidArgument,
                  "need at least 3 profiles, got %zu",
                  profiles.size());
        auto matrix = workloads::metricMatrix(profiles);
        auto labels = workloads::profileLabels(profiles);
        std::cout << "loaded " << profiles.size()
                  << " kernel profiles\n";

        auto pca = stats::pca(matrix);
        size_t pcs = pca.numPcsFor(coverage);
        std::cout << pcs << " PCs cover " << Table::pct(coverage, 0)
                  << " of variance\n\n";
        auto space = pca.truncatedScores(pcs);

        std::cout << cluster::agglomerate(space,
                                          cluster::Linkage::Ward)
                         .render(labels)
                  << "\n";

        Rng rng(1);
        uint32_t k = forcedK
                         ? forcedK
                         : cluster::selectKByBic(
                               space, uint32_t(space.rows()) / 2, rng);
        auto km = cluster::kmeans(space, k, rng);
        auto reps = cluster::medoids(space, km.labels, k);
        std::cout << "k = " << k
                  << (forcedK ? " (forced)" : " (BIC)")
                  << ", silhouette "
                  << Table::num(
                         cluster::silhouette(space, km.labels), 3)
                  << "\n";
        for (uint32_t c = 0; c < k; ++c) {
            std::cout << "  cluster " << c << " [rep "
                      << labels[reps[c]] << "]:";
            for (size_t i = 0; i < labels.size(); ++i)
                if (km.labels[i] == int(c))
                    std::cout << " " << labels[i];
            std::cout << "\n";
        }

        std::cout << "\nper-subspace stress leaders:\n";
        for (uint8_t s = 0;
             s < uint8_t(metrics::Subspace::NumSubspaces); ++s) {
            auto rank = evalmetrics::stressRanking(
                matrix, metrics::Subspace(s));
            std::cout << "  "
                      << metrics::subspaceName(metrics::Subspace(s))
                      << ": ";
            for (size_t i = 0; i < rank.size() && i < 3; ++i)
                std::cout << labels[rank[i].kernel]
                          << (i < 2 ? ", " : "");
            std::cout << "\n";
        }
        return 0;
    });
}
