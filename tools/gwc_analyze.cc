/**
 * @file
 * gwc_analyze — run the paper's analysis pipeline over saved
 * profiles: PCA, dendrogram, BIC k-means, representatives and
 * per-subspace stress rankings.
 *
 *   gwc_analyze [-k K] [-c coverage] profiles.csv
 */

#include <cstdlib>
#include <iostream>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "evalmetrics/evalmetrics.hh"
#include "metrics/profile_io.hh"
#include "stats/pca.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace gwc;

    std::string path;
    uint32_t forcedK = 0;
    double coverage = 0.90;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-k" && i + 1 < argc) {
            forcedK = uint32_t(std::atoi(argv[++i]));
        } else if (arg == "-c" && i + 1 < argc) {
            coverage = std::atof(argv[++i]);
        } else if (arg == "-h" || arg == "--help") {
            std::cerr << "usage: gwc_analyze [-k K] [-c coverage] "
                         "profiles.csv\n";
            return 0;
        } else {
            path = arg;
        }
    }
    if (path.empty())
        fatal("no profile CSV given (see --help)");

    auto profiles = metrics::loadProfiles(path);
    if (profiles.size() < 3)
        fatal("need at least 3 profiles, got %zu", profiles.size());
    auto matrix = workloads::metricMatrix(profiles);
    auto labels = workloads::profileLabels(profiles);
    std::cout << "loaded " << profiles.size() << " kernel profiles\n";

    auto pca = stats::pca(matrix);
    size_t pcs = pca.numPcsFor(coverage);
    std::cout << pcs << " PCs cover " << Table::pct(coverage, 0)
              << " of variance\n\n";
    auto space = pca.truncatedScores(pcs);

    std::cout << cluster::agglomerate(space, cluster::Linkage::Ward)
                     .render(labels)
              << "\n";

    Rng rng(1);
    uint32_t k = forcedK
                     ? forcedK
                     : cluster::selectKByBic(
                           space, uint32_t(space.rows()) / 2, rng);
    auto km = cluster::kmeans(space, k, rng);
    auto reps = cluster::medoids(space, km.labels, k);
    std::cout << "k = " << k
              << (forcedK ? " (forced)" : " (BIC)") << ", silhouette "
              << Table::num(cluster::silhouette(space, km.labels), 3)
              << "\n";
    for (uint32_t c = 0; c < k; ++c) {
        std::cout << "  cluster " << c << " [rep "
                  << labels[reps[c]] << "]:";
        for (size_t i = 0; i < labels.size(); ++i)
            if (km.labels[i] == int(c))
                std::cout << " " << labels[i];
        std::cout << "\n";
    }

    std::cout << "\nper-subspace stress leaders:\n";
    for (uint8_t s = 0;
         s < uint8_t(metrics::Subspace::NumSubspaces); ++s) {
        auto rank = evalmetrics::stressRanking(
            matrix, metrics::Subspace(s));
        std::cout << "  "
                  << metrics::subspaceName(metrics::Subspace(s))
                  << ": ";
        for (size_t i = 0; i < rank.size() && i < 3; ++i)
            std::cout << labels[rank[i].kernel]
                      << (i < 2 ? ", " : "");
        std::cout << "\n";
    }
    return 0;
}
