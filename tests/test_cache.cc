/**
 * @file
 * Result-cache tests (docs/CACHING.md): canonical-key stability and
 * per-dimension invalidation, payload round-trips, integrity-failure
 * handling (corrupt entries are stale, evicted in rw, kept in ro),
 * admission policy (failed/injected/hooked runs never cached) and the
 * headline property — cache-served suite results are byte-identical
 * to fresh simulation across jobs levels and cache states.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fingerprint.hh"
#include "metrics/profile_io.hh"
#include "runtime/inject.hh"
#include "runtime/result_cache.hh"
#include "simt/engine.hh"
#include "workloads/suite.hh"

namespace fs = std::filesystem;
using namespace gwc;
using runtime::CachedWorkloadResult;
using runtime::CacheMode;
using runtime::ResultCache;
using runtime::StatsSnapshot;
using runtime::WorkloadKey;

namespace
{

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
tempDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "gwc_cache_" + tag;
    fs::remove_all(dir);
    return dir;
}

/** The fixed key of the golden canonical-text test. */
WorkloadKey
goldenKey()
{
    WorkloadKey k;
    k.workload = "BFS";
    k.scale = 2;
    k.verify = true;
    k.ctaSampleStride = 4;
    k.ilpWarpCap = 8;
    k.ilpLanes = {1, 2, 4};
    k.reuseCap = 64;
    k.perLaunch = false;
    k.collectors = "profile";
    k.gksSourceHash = "00ff";
    k.extra.emplace_back("top_n", "10");
    // Pin the build-level seams so the golden text cannot drift with
    // schema bumps (those get their own invalidation assertions).
    k.profileSchemaVersion = 7;
    k.engineSemanticsVersion = 3;
    k.characteristicSet = "cafe";
    return k;
}

constexpr char kGoldenCanonical[] =
    "gwc-workload-key v1\n"
    "workload=BFS\n"
    "scale=2\n"
    "verify=1\n"
    "cta_sample_stride=4\n"
    "ilp_warp_cap=8\n"
    "ilp_lanes=1,2,4\n"
    "reuse_cap=64\n"
    "per_launch=0\n"
    "collectors=profile\n"
    "gks_source=00ff\n"
    "x_top_n=10\n"
    "profile_schema=7\n"
    "characteristics=cafe\n"
    "engine_semantics=3\n";

/** Deterministic text form of a snapshot for byte-wise comparison.
 * Thread-pool activity legitimately differs run to run, so the pool
 * group is excluded; timers can be excluded when comparing runs with
 * different wall-clock origins. */
std::string
snapText(const StatsSnapshot &snap, bool withTimers = true)
{
    std::ostringstream os;
    for (const auto &g : snap.groups) {
        if (g.name == "pool")
            continue;
        for (const auto &c : g.counters)
            os << g.name << ".counter " << c.name << " = " << c.value
               << " # " << c.desc << "\n";
        for (const auto &h : g.histograms) {
            os << g.name << ".histogram " << h.name << " = " << h.count
               << "/" << h.sum << "/" << h.min << "/" << h.max << " [";
            for (size_t i = 0; i < telemetry::Histogram::kBuckets; ++i)
                os << (i ? "," : "") << h.buckets[i];
            os << "] # " << h.desc << "\n";
        }
        if (withTimers)
            for (const auto &t : g.timers)
                os << g.name << ".timer " << t.name << " = " << t.ns
                   << "ns/" << t.laps << " # " << t.desc << "\n";
    }
    return os.str();
}

/** Canonical profile CSV bytes of a suite run set. */
std::string
profilesCsv(const std::vector<workloads::WorkloadRun> &runs)
{
    std::ostringstream os;
    metrics::writeProfilesCsv(os, workloads::allProfiles(runs));
    return os.str();
}

const std::vector<std::string> kSuite = {"SLA", "SPROD"};

struct SuiteOutcome
{
    std::vector<workloads::WorkloadRun> runs;
    std::string csv;
    StatsSnapshot stats;
};

/** Run the test suite with optional cache, harvesting the byte-level
 * outputs identity is asserted on. */
SuiteOutcome
runCharacterization(ResultCache *cache, uint32_t jobs = 1,
                    runtime::InjectionPlan *inject = nullptr,
                    simt::ProfilerHook *extraHook = nullptr)
{
    telemetry::Registry reg;
    workloads::SuiteOptions opts;
    opts.jobs = jobs;
    opts.stats = &reg;
    opts.cache = cache;
    opts.inject = inject;
    opts.extraHook = extraHook;
    SuiteOutcome out;
    out.runs = workloads::runSuite(kSuite, opts);
    out.csv = profilesCsv(out.runs);
    out.stats = StatsSnapshot::capture(reg);
    return out;
}

size_t
entryCount(const std::string &dir)
{
    return ResultCache::scan(dir, false).size();
}

/** A benign extra hook: observes nothing, forces the bypass policy. */
struct NullHook : simt::ProfilerHook
{};

} // anonymous namespace

TEST(CacheKey, GoldenCanonicalText)
{
    WorkloadKey k = goldenKey();
    EXPECT_EQ(runtime::canonicalWorkloadKey(k), kGoldenCanonical);
    // The digest is pinned via the golden text: entry filenames (and
    // therefore warm caches) survive rebuilds of the same sources.
    EXPECT_EQ(runtime::workloadFingerprint(k),
              hex64(fnv1a64(kGoldenCanonical)));
    EXPECT_EQ(runtime::workloadFingerprint(k), "2efab73daf21b911");
}

TEST(CacheKey, DefaultSeamsTrackTheBuild)
{
    WorkloadKey k;
    k.workload = "BFS";
    std::string text = runtime::canonicalWorkloadKey(k);
    EXPECT_NE(text.find("profile_schema=" +
                        std::to_string(metrics::kProfileFormatVersion)),
              std::string::npos);
    EXPECT_NE(text.find("engine_semantics=" +
                        std::to_string(simt::kEventSemanticsVersion)),
              std::string::npos);
    // The characteristic-set digest is a 16-char hex64.
    EXPECT_EQ(k.characteristicSet.size(), 16u);
    EXPECT_EQ(k.characteristicSet.find_first_not_of(
                  "0123456789abcdef"),
              std::string::npos);
    std::string fp = runtime::workloadFingerprint(k);
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(CacheKey, EveryDimensionInvalidatesIndependently)
{
    const WorkloadKey base = goldenKey();
    std::vector<std::pair<std::string, WorkloadKey>> variants;
    auto add = [&](const char *what, auto mutate) {
        WorkloadKey k = goldenKey();
        mutate(k);
        variants.emplace_back(what, std::move(k));
    };
    add("workload", [](WorkloadKey &k) { k.workload = "MUM"; });
    add("scale", [](WorkloadKey &k) { k.scale = 3; });
    add("verify", [](WorkloadKey &k) { k.verify = false; });
    add("cta_sample_stride",
        [](WorkloadKey &k) { k.ctaSampleStride = 8; });
    add("ilp_warp_cap", [](WorkloadKey &k) { k.ilpWarpCap = 9; });
    add("ilp_lanes", [](WorkloadKey &k) { k.ilpLanes = {1, 2, 5}; });
    add("reuse_cap", [](WorkloadKey &k) { k.reuseCap = 65; });
    add("per_launch", [](WorkloadKey &k) { k.perLaunch = true; });
    add("collectors",
        [](WorkloadKey &k) { k.collectors = "hotspots"; });
    add("gks_source",
        [](WorkloadKey &k) { k.gksSourceHash = "00fe"; });
    add("extra value", [](WorkloadKey &k) { k.extra[0].second = "11"; });
    add("extra name",
        [](WorkloadKey &k) { k.extra[0].first = "top_m"; });
    add("profile_schema",
        [](WorkloadKey &k) { k.profileSchemaVersion = 8; });
    add("engine_semantics",
        [](WorkloadKey &k) { k.engineSemanticsVersion = 4; });
    add("characteristics",
        [](WorkloadKey &k) { k.characteristicSet = "beef"; });

    const std::string baseFp = runtime::workloadFingerprint(base);
    std::vector<std::string> fps;
    for (const auto &[what, key] : variants) {
        std::string fp = runtime::workloadFingerprint(key);
        EXPECT_NE(fp, baseFp) << "dimension did not invalidate: "
                              << what;
        fps.push_back(fp);
    }
    // All variants are pairwise distinct too.
    for (size_t i = 0; i < fps.size(); ++i)
        for (size_t j = i + 1; j < fps.size(); ++j)
            EXPECT_NE(fps[i], fps[j])
                << variants[i].first << " vs " << variants[j].first;
}

TEST(CacheKey, ExtraFieldOrderIsIdentity)
{
    WorkloadKey a = goldenKey();
    a.extra = {{"p", "1"}, {"q", "2"}};
    WorkloadKey b = goldenKey();
    b.extra = {{"q", "2"}, {"p", "1"}};
    EXPECT_NE(runtime::workloadFingerprint(a),
              runtime::workloadFingerprint(b));
}

TEST(CachePayload, RoundTripPreservesEverything)
{
    // Real profiles from a real run (exercises the CSV body and the
    // cta-z patch rows), plus a synthetic stats snapshot covering all
    // three stat kinds.
    telemetry::Registry reg;
    workloads::SuiteOptions opts;
    opts.stats = &reg;
    auto runs = workloads::runSuite({"SLA"}, opts);
    ASSERT_FALSE(runs.at(0).failed());
    ASSERT_FALSE(runs.at(0).profiles.empty());

    CachedWorkloadResult in;
    in.suite = "dense-linear-algebra";
    in.name = "Scan of large arrays";
    in.abbrev = "SLA";
    in.summary = "tab\tand newline-free summary";
    in.verified = true;
    in.warpInstrs = runs.at(0).totals.warpInstrs;
    in.setupSec = 0.015625;        // exactly representable
    in.simulateSec = 1.0 / 3.0;    // not exactly printable in short form
    in.profileSec = 0;
    in.verifySec = 4e-9;
    in.profiles = runs.at(0).profiles;
    in.stats = StatsSnapshot::capture(reg);

    std::string payload = ResultCache::encodeWorkloadPayload(in);
    auto out = ResultCache::decodeWorkloadPayload(payload);
    ASSERT_TRUE(out.ok()) << out.status().message();

    EXPECT_EQ(out.value().suite, in.suite);
    EXPECT_EQ(out.value().name, in.name);
    EXPECT_EQ(out.value().abbrev, in.abbrev);
    EXPECT_EQ(out.value().summary, in.summary);
    EXPECT_EQ(out.value().verified, in.verified);
    EXPECT_EQ(out.value().warpInstrs, in.warpInstrs);
    EXPECT_EQ(out.value().setupSec, in.setupSec);
    EXPECT_EQ(out.value().simulateSec, in.simulateSec);  // %.17g exact
    EXPECT_EQ(out.value().profileSec, in.profileSec);
    EXPECT_EQ(out.value().verifySec, in.verifySec);

    std::ostringstream a, b;
    metrics::writeProfilesCsv(a, in.profiles);
    metrics::writeProfilesCsv(b, out.value().profiles);
    EXPECT_EQ(a.str(), b.str());
    ASSERT_EQ(out.value().profiles.size(), in.profiles.size());
    for (size_t i = 0; i < in.profiles.size(); ++i)
        EXPECT_EQ(out.value().profiles[i].cta.z, in.profiles[i].cta.z);

    EXPECT_EQ(snapText(out.value().stats), snapText(in.stats));
}

TEST(CachePayload, StatsSnapshotRestoreIsByteIdentical)
{
    telemetry::Registry reg;
    auto &g = reg.group("t");
    g.counter("c", "a counter") += 5;
    g.histogram("h", "a histogram").sample(3);
    g.histogram("h", "a histogram").sample(40000);
    g.timer("tm", "a timer").addRaw(123456789, 3);
    auto &g2 = reg.group("u");
    g2.counter("x", "") += 1;

    StatsSnapshot snap = StatsSnapshot::capture(reg);
    telemetry::Registry reg2;
    snap.restore(reg2);
    EXPECT_EQ(snapText(StatsSnapshot::capture(reg2)), snapText(snap));

    // The text dumps (what --stats-out writes) match exactly too.
    std::ostringstream a, b;
    reg.dumpText(a);
    reg2.dumpText(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(CachePayload, DecodeRejectsMalformed)
{
    EXPECT_FALSE(ResultCache::decodeWorkloadPayload("").ok());
    EXPECT_FALSE(ResultCache::decodeWorkloadPayload("garbage\n").ok());
    CachedWorkloadResult r;
    r.abbrev = "X";
    std::string payload = ResultCache::encodeWorkloadPayload(r);
    // Truncation anywhere must be rejected (the "end" marker guards
    // against a short-but-parsable prefix).
    EXPECT_FALSE(ResultCache::decodeWorkloadPayload(
                     payload.substr(0, payload.size() / 2))
                     .ok());
    EXPECT_FALSE(ResultCache::decodeWorkloadPayload(
                     payload.substr(0, payload.size() - 5))
                     .ok());
}

TEST(CacheStore, StoreThenLookupAcrossInstances)
{
    std::string dir = tempDir("store");
    WorkloadKey key = goldenKey();
    CachedWorkloadResult r;
    r.abbrev = "BFS";
    r.verified = true;
    r.warpInstrs = 42;

    {
        ResultCache cache({dir, CacheMode::ReadWrite});
        EXPECT_FALSE(cache.lookupWorkload(key).has_value());
        EXPECT_EQ(cache.counters().misses.load(), 1u);
        EXPECT_TRUE(cache.storeWorkload(key, r));
        EXPECT_EQ(cache.counters().admitted.load(), 1u);
    }
    {
        ResultCache cache({dir, CacheMode::ReadWrite});
        auto hit = cache.lookupWorkload(key);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->abbrev, "BFS");
        EXPECT_TRUE(hit->verified);
        EXPECT_EQ(hit->warpInstrs, 42u);
        EXPECT_EQ(cache.counters().hits.load(), 1u);

        WorkloadKey other = key;
        other.scale += 1;
        EXPECT_FALSE(cache.lookupWorkload(other).has_value());
        EXPECT_EQ(cache.counters().misses.load(), 1u);
    }
    // Exactly one entry on disk, named by the fingerprint.
    auto entries = ResultCache::scan(dir, true);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].valid) << entries[0].error;
    EXPECT_EQ(entries[0].key, runtime::workloadFingerprint(key));
    EXPECT_EQ(entries[0].kind, "workload");
}

TEST(CacheStore, BlobRoundTripAndKindMismatch)
{
    std::string dir = tempDir("blob");
    ResultCache cache({dir, CacheMode::ReadWrite});
    WorkloadKey key = goldenKey();
    std::string payload = "rendered\ttable\nwith bytes \x01\x02\n";
    EXPECT_TRUE(cache.storeBlob(key, "hotspots", payload));
    auto hit = cache.lookupBlob(key, "hotspots");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
    // Same key, different kind: never served.
    EXPECT_FALSE(cache.lookupBlob(key, "timing").has_value());
}

TEST(CacheStore, CorruptEntryIsStaleAndEvictedInRw)
{
    std::string dir = tempDir("corrupt");
    WorkloadKey key = goldenKey();
    CachedWorkloadResult r;
    r.abbrev = "BFS";
    {
        ResultCache cache({dir, CacheMode::ReadWrite});
        ASSERT_TRUE(cache.storeWorkload(key, r));
    }
    auto entries = ResultCache::scan(dir, true);
    ASSERT_EQ(entries.size(), 1u);
    const std::string path = entries[0].path;

    // Flip one byte near the end (payload body, not the header).
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(-3, std::ios::end);
        char c = 0;
        f.seekg(f.tellp());
        f.get(c);
        f.seekp(-3, std::ios::end);
        f.put(char(c ^ 0x20));
    }
    auto deep = ResultCache::scan(dir, true);
    ASSERT_EQ(deep.size(), 1u);
    EXPECT_FALSE(deep[0].valid);
    EXPECT_NE(deep[0].error.find("checksum"), std::string::npos)
        << deep[0].error;

    ResultCache cache({dir, CacheMode::ReadWrite});
    EXPECT_FALSE(cache.lookupWorkload(key).has_value());
    EXPECT_EQ(cache.counters().stale.load(), 1u);
    EXPECT_EQ(cache.counters().hits.load(), 0u);
    EXPECT_FALSE(fs::exists(path)) << "rw lookup must evict";
}

TEST(CacheStore, TruncationAndBadMagicAreStale)
{
    std::string dir = tempDir("trunc");
    WorkloadKey key = goldenKey();
    CachedWorkloadResult r;
    r.abbrev = "BFS";
    ResultCache cache({dir, CacheMode::ReadWrite});
    ASSERT_TRUE(cache.storeWorkload(key, r));
    const std::string path = ResultCache::scan(dir, false)[0].path;

    // Truncate to half: length check fails.
    auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);
    EXPECT_FALSE(cache.lookupWorkload(key).has_value());
    EXPECT_EQ(cache.counters().stale.load(), 1u);
    EXPECT_FALSE(fs::exists(path));

    // Re-admit, then clobber the magic.
    ASSERT_TRUE(cache.storeWorkload(key, r));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(0);
        f.write("NOTCACHE", 8);
    }
    EXPECT_FALSE(cache.lookupWorkload(key).has_value());
    EXPECT_EQ(cache.counters().stale.load(), 2u);
    EXPECT_FALSE(fs::exists(path));

    // After eviction a lookup is a plain miss again.
    EXPECT_FALSE(cache.lookupWorkload(key).has_value());
    EXPECT_EQ(cache.counters().misses.load(), 1u);
}

TEST(CacheStore, ReadOnlyNeverWritesOrEvicts)
{
    std::string dir = tempDir("ro");
    WorkloadKey key = goldenKey();
    CachedWorkloadResult r;
    r.abbrev = "BFS";

    {
        // ro on a cold directory: no directory is even created.
        ResultCache ro({dir, CacheMode::ReadOnly});
        EXPECT_FALSE(ro.lookupWorkload(key).has_value());
        EXPECT_FALSE(ro.storeWorkload(key, r));
        EXPECT_EQ(ro.counters().admitted.load(), 0u);
        EXPECT_FALSE(fs::exists(dir));
    }
    {
        ResultCache rw({dir, CacheMode::ReadWrite});
        ASSERT_TRUE(rw.storeWorkload(key, r));
    }
    const std::string path = ResultCache::scan(dir, false)[0].path;
    {
        // ro serves hits without touching the directory.
        ResultCache ro({dir, CacheMode::ReadOnly});
        EXPECT_TRUE(ro.lookupWorkload(key).has_value());
        EXPECT_FALSE(ro.storeWorkload(key, r));
        EXPECT_EQ(entryCount(dir), 1u);
    }
    // Corrupt the entry: ro detects staleness but keeps the file.
    fs::resize_file(path, fs::file_size(path) / 2);
    {
        ResultCache ro({dir, CacheMode::ReadOnly});
        EXPECT_FALSE(ro.lookupWorkload(key).has_value());
        EXPECT_EQ(ro.counters().stale.load(), 1u);
        EXPECT_TRUE(fs::exists(path)) << "ro must not evict";
    }
}

TEST(CacheStore, GcRemovesOrphansAndOldestFirst)
{
    std::string dir = tempDir("gc");
    WorkloadKey keyA = goldenKey();
    WorkloadKey keyB = goldenKey();
    keyB.scale = 9;
    CachedWorkloadResult r;
    r.abbrev = "BFS";
    ResultCache cache({dir, CacheMode::ReadWrite});
    ASSERT_TRUE(cache.storeWorkload(keyA, r));
    ASSERT_TRUE(cache.storeWorkload(keyB, r));
    std::ofstream(dir + "/.tmp-123-0-dead") << "orphaned stage file";

    // Generous budget: only the orphan goes.
    auto [removed, freed] = ResultCache::gc(dir, 1u << 20);
    EXPECT_EQ(removed, 1u);
    EXPECT_GT(freed, 0u);
    EXPECT_EQ(entryCount(dir), 2u);

    // Age A, then shrink to one entry's budget: A (oldest) goes.
    const std::string pathA =
        dir + "/" + runtime::workloadFingerprint(keyA) + ".gwce";
    const std::string pathB =
        dir + "/" + runtime::workloadFingerprint(keyB) + ".gwce";
    fs::last_write_time(pathA, fs::last_write_time(pathA) -
                                   std::chrono::hours(1));
    ResultCache::gc(dir, fs::file_size(pathB));
    EXPECT_FALSE(fs::exists(pathA));
    EXPECT_TRUE(fs::exists(pathB));

    // Zero budget empties the cache.
    ResultCache::gc(dir, 0);
    EXPECT_EQ(entryCount(dir), 0u);
}

TEST(CacheSuite, WarmHitsAreByteIdenticalAcrossJobsAndModes)
{
    // Baseline: plain simulation, no cache anywhere.
    SuiteOutcome baseline = runCharacterization(nullptr, 1);
    for (const auto &run : baseline.runs) {
        ASSERT_FALSE(run.failed());
        EXPECT_FALSE(run.cached);
    }

    // Cold fill (rw, jobs=1): simulates, admits, changes nothing.
    std::string dir = tempDir("suite");
    ResultCache fillCache({dir, CacheMode::ReadWrite});
    SuiteOutcome fill = runCharacterization(&fillCache, 1);
    EXPECT_EQ(fillCache.counters().misses.load(), kSuite.size());
    EXPECT_EQ(fillCache.counters().admitted.load(), kSuite.size());
    EXPECT_EQ(fillCache.counters().hits.load(), 0u);
    for (const auto &run : fill.runs)
        EXPECT_FALSE(run.cached);
    EXPECT_EQ(fill.csv, baseline.csv);
    // Counters and histograms are deterministic across runs; timers
    // carry each run's own wall-clock, so they are excluded here.
    EXPECT_EQ(snapText(fill.stats, false),
              snapText(baseline.stats, false));
    EXPECT_EQ(entryCount(dir), kSuite.size());

    // Warm runs: rw and ro, serial and parallel — all byte-identical
    // to the baseline, including timers (restored from the fill run).
    struct Variant
    {
        CacheMode mode;
        uint32_t jobs;
    };
    for (const Variant &v :
         {Variant{CacheMode::ReadWrite, 1},
          Variant{CacheMode::ReadWrite, 4},
          Variant{CacheMode::ReadOnly, 1},
          Variant{CacheMode::ReadOnly, 4}}) {
        SCOPED_TRACE(std::string(runtime::cacheModeName(v.mode)) +
                     " jobs=" + std::to_string(v.jobs));
        ResultCache warmCache({dir, v.mode});
        SuiteOutcome warm = runCharacterization(&warmCache, v.jobs);
        EXPECT_EQ(warmCache.counters().hits.load(), kSuite.size());
        EXPECT_EQ(warmCache.counters().misses.load(), 0u);
        for (const auto &run : warm.runs) {
            EXPECT_TRUE(run.cached);
            EXPECT_FALSE(run.failed());
        }
        EXPECT_EQ(warm.csv, baseline.csv);
        EXPECT_EQ(snapText(warm.stats), snapText(fill.stats));
        EXPECT_EQ(entryCount(dir), kSuite.size());
    }
}

TEST(CacheSuite, CorruptEntryFallsBackToSimulation)
{
    std::string dir = tempDir("fallback");
    ResultCache fillCache({dir, CacheMode::ReadWrite});
    SuiteOutcome fill = runCharacterization(&fillCache, 1);
    ASSERT_EQ(entryCount(dir), kSuite.size());

    // Corrupt one entry's payload byte.
    auto entries = ResultCache::scan(dir, false);
    const std::string victim = entries[0].path;
    {
        std::fstream f(victim, std::ios::in | std::ios::out |
                                   std::ios::binary);
        f.seekp(-2, std::ios::end);
        f.put('\xff');
    }
    ASSERT_FALSE(ResultCache::scan(dir, true)[0].valid);

    ResultCache warmCache({dir, CacheMode::ReadWrite});
    SuiteOutcome warm = runCharacterization(&warmCache, 1);
    EXPECT_EQ(warmCache.counters().stale.load(), 1u);
    EXPECT_EQ(warmCache.counters().hits.load(), kSuite.size() - 1);
    EXPECT_EQ(warmCache.counters().admitted.load(), 1u);
    for (const auto &run : warm.runs)
        EXPECT_FALSE(run.failed());
    EXPECT_EQ(warm.csv, fill.csv);

    // The re-simulated entry was re-admitted and verifies clean.
    auto healed = ResultCache::scan(dir, true);
    ASSERT_EQ(healed.size(), kSuite.size());
    for (const auto &e : healed)
        EXPECT_TRUE(e.valid) << e.path << ": " << e.error;
}

TEST(CacheSuite, InjectedWorkloadIsBypassedAndNeverAdmitted)
{
    std::string dir = tempDir("inject");
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpecs("verify-mismatch@SLA").ok());

    ResultCache cache({dir, CacheMode::ReadWrite});
    SuiteOutcome out = runCharacterization(&cache, 1, &plan);
    ASSERT_TRUE(out.runs.at(0).failed());   // SLA
    ASSERT_FALSE(out.runs.at(1).failed());  // SPROD
    EXPECT_EQ(cache.counters().bypassed.load(), 1u);
    EXPECT_EQ(cache.counters().misses.load(), 1u);
    EXPECT_EQ(cache.counters().admitted.load(), 1u);

    // Only the clean workload is on disk; the failed one must re-run.
    auto entries = ResultCache::scan(dir, true);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].valid);

    ResultCache warm({dir, CacheMode::ReadWrite});
    SuiteOutcome again = runCharacterization(&warm, 1);
    EXPECT_EQ(warm.counters().hits.load(), 1u);    // SPROD
    EXPECT_EQ(warm.counters().misses.load(), 1u);  // SLA simulates
    EXPECT_FALSE(again.runs.at(0).cached);
    EXPECT_TRUE(again.runs.at(1).cached);
    EXPECT_FALSE(again.runs.at(0).failed());
}

TEST(CacheSuite, ExtraHookBypassesTheCache)
{
    std::string dir = tempDir("hook");
    NullHook hook;
    ResultCache cache({dir, CacheMode::ReadWrite});
    SuiteOutcome out =
        runCharacterization(&cache, 1, nullptr, &hook);
    for (const auto &run : out.runs) {
        EXPECT_FALSE(run.failed());
        EXPECT_FALSE(run.cached);
    }
    EXPECT_EQ(cache.counters().bypassed.load(), kSuite.size());
    EXPECT_EQ(cache.counters().hits.load(), 0u);
    EXPECT_EQ(cache.counters().misses.load(), 0u);
    EXPECT_EQ(cache.counters().admitted.load(), 0u);
    EXPECT_EQ(entryCount(dir), 0u);
}

TEST(CacheConcurrency, TwoProcessesSharingOneDirRaceSafely)
{
    // The gwc_serve deployment shape: several processes (a daemon and
    // ad-hoc CLI runs) share one --cache-dir read-write. Racing fills
    // of the SAME key must both succeed through the tmp + atomic
    // rename publish, and a concurrent reader must never observe a
    // torn entry — every lookup returns one complete payload or
    // misses.
    std::string dir = tempDir("race");
    WorkloadKey key;
    key.workload = "RACE";
    key.collectors = "blob";

    // Distinctive homogeneous payloads: any cross-process tearing
    // would mix bytes and fail the all-same check (and the entry
    // checksum before that).
    auto payloadFor = [](char c) { return std::string(1 << 16, c); };
    const std::string parentPayload = payloadFor('P');
    const std::string childPayload = payloadFor('C');
    constexpr int kRounds = 40;

    auto worker = [&](const std::string &payload) {
        ResultCache cache({dir, CacheMode::ReadWrite});
        for (int i = 0; i < kRounds; ++i) {
            if (!cache.storeBlob(key, "race", payload))
                return 1;
            auto seen = cache.lookupBlob(key, "race");
            if (!seen)
                continue; // the other side's fill won; fine
            if (seen->size() != payload.size())
                return 2;
            char c = (*seen)[0];
            if (c != 'P' && c != 'C')
                return 3;
            if (seen->find_first_not_of(c) != std::string::npos)
                return 4; // torn read: mixed writers
        }
        return 0;
    };

    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: plain syscalls only, report via exit status.
        _exit(worker(childPayload));
    }
    int parentRc = worker(parentPayload);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(parentRc, 0);

    // The surviving entry is complete and valid on deep inspection.
    auto final = ResultCache(ResultCache::Config{dir,
                                                CacheMode::ReadOnly})
                     .lookupBlob(key, "race");
    ASSERT_TRUE(final.has_value());
    EXPECT_TRUE(*final == parentPayload || *final == childPayload);
    for (const auto &entry : ResultCache::scan(dir, /*deep=*/true))
        EXPECT_TRUE(entry.valid) << entry.path << ": " << entry.error;
}
