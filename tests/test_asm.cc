/**
 * @file
 * Tests of the GKS assembly front end: parsing, execution,
 * divergence, barriers, atomics, error reporting, and — the key
 * property — characterization equivalence with the C++ DSL for the
 * same algorithm.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/hotspots.hh"
#include "metrics/profiler.hh"
#include "simt/asm.hh"
#include "simt/engine.hh"

namespace gwc::simt
{
namespace
{

TEST(Asm, ParsesMetadata)
{
    AsmKernel k = assembleKernel(R"(
        ; a trivial kernel
        .kernel meta
        .param ptr out
        .param u32 n
        gid %i
        st.u32 $out[%i], %i
    )");
    EXPECT_EQ(k.name(), "meta");
    ASSERT_EQ(k.params().size(), 2u);
    EXPECT_EQ(k.params()[0].name, "out");
    EXPECT_EQ(k.params()[1].kind, AsmParam::Kind::U32);
    EXPECT_EQ(k.registerCount(), 1u);
    EXPECT_GE(k.instructionCount(), 2u);
}

TEST(Asm, VecAddF32)
{
    AsmKernel k = assembleKernel(R"(
        .kernel vecadd
        .param ptr a
        .param ptr b
        .param ptr c
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          ld.f32 %x, $a[%i]
          ld.f32 %y, $b[%i]
          add.f32 %z, %x, %y
          st.f32 $c[%i], %z
        endif
    )");
    Engine e;
    const uint32_t n = 500;
    auto a = e.alloc<float>(n);
    auto b = e.alloc<float>(n);
    auto c = e.alloc<float>(n);
    for (uint32_t i = 0; i < n; ++i) {
        a.set(i, float(i));
        b.set(i, 0.5f);
    }
    KernelParams p;
    p.push(a.addr()).push(b.addr()).push(c.addr()).push(n);
    e.launch(k.name(), k.entry(), Dim3(4), Dim3(128), 0, p);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(c[i], float(i) + 0.5f) << i;
}

TEST(Asm, DivergentWhileCollatz)
{
    AsmKernel k = assembleKernel(R"(
        .kernel collatz
        .param ptr out
        gid %i
        mov.u32 %x, %i
        while.gt.u32 %x, 1
          rem.u32 %r, %x, 2
          if.eq.u32 %r, 0
            shr.u32 %x, %x, 1
          else
            mul.u32 %t, %x, 3
            add.u32 %x, %t, 1
          endif
        endwhile
        st.u32 $out[%i], %x
    )");
    Engine e;
    auto out = e.alloc<uint32_t>(128);
    KernelParams p;
    p.push(out.addr());
    e.launch("collatz", k.entry(), Dim3(2), Dim3(64), 0, p);
    EXPECT_EQ(out[0], 0u);
    for (uint32_t i = 1; i < 128; ++i)
        EXPECT_EQ(out[i], 1u) << i;
}

TEST(Asm, BarrierInsideWhileIsRejected)
{
    // GKS keeps the engine's rule: CTA barriers only at the top
    // level. A tree reduction therefore unrolls its barrier loop in
    // GKS (or stays in the C++ DSL, whose uniform loops are plain
    // C++ around co_await).
    Result<AsmKernel> r = tryAssembleKernel(R"(
        .kernel reduce
        tid %t
        mov.u32 %s, 64
        while.gt.u32 %s, 0
          shr.u32 %s, %s, 1
          bar
        endwhile
    )");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(r.status().message().find("bar inside divergent"),
              std::string::npos)
        << r.status().message();
}

TEST(Asm, UnrolledBarrierPhases)
{
    // Two explicit phases with a top-level barrier between them.
    AsmKernel k = assembleKernel(R"(
        .kernel twophase
        .param ptr out
        tid %t
        mul.u32 %v, %t, 3
        sts.u32 sm[%t], %v
        bar
        xor.u32 %m, %t, 1
        lds.u32 %r, sm[%m]
        st.u32 $out[%t], %r
    )");
    Engine e;
    auto out = e.alloc<uint32_t>(64);
    KernelParams p;
    p.push(out.addr());
    e.launch("twophase", k.entry(), Dim3(1), Dim3(64), 64 * 4, p);
    for (uint32_t t = 0; t < 64; ++t)
        EXPECT_EQ(out[t], (t ^ 1u) * 3u) << t;
}

TEST(Asm, BarrierProducerConsumer)
{
    // Warp 1 consumes what warp 0 produced across a barrier.
    AsmKernel k = assembleKernel(R"(
        .kernel pc
        .param ptr out
        tid %t
        sts.u32 sm[%t], %t
        bar
        sub.u32 %m, 63, %t
        lds.u32 %v, sm[%m]
        st.u32 $out[%t], %v
    )");
    Engine e;
    auto out = e.alloc<uint32_t>(64);
    KernelParams p;
    p.push(out.addr());
    e.launch("pc", k.entry(), Dim3(1), Dim3(64), 64 * 4, p);
    for (uint32_t t = 0; t < 64; ++t)
        EXPECT_EQ(out[t], 63 - t) << t;
}

TEST(Asm, AtomicsAndSpecialRegs)
{
    AsmKernel k = assembleKernel(R"(
        .kernel hist
        .param ptr bins
        lane %l
        rem.u32 %b, %l, 4
        atom.add.u32 %old, $bins[%b], 1
    )");
    Engine e;
    auto bins = e.alloc<uint32_t>(4);
    bins.fill(0);
    KernelParams p;
    p.push(bins.addr());
    e.launch("hist", k.entry(), Dim3(2), Dim3(32), 0, p);
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(bins[b], 16u);
}

TEST(Asm, SfuAndCvt)
{
    AsmKernel k = assembleKernel(R"(
        .kernel mathy
        .param ptr out
        gid %i
        cvt.f32.u32 %x, %i
        add.f32 %x, %x, 1.0
        sqrt.f32 %r, %x
        mul.f32 %r, %r, %r
        st.f32 $out[%i], %r
    )");
    Engine e;
    auto out = e.alloc<float>(64);
    KernelParams p;
    p.push(out.addr());
    e.launch("mathy", k.entry(), Dim3(1), Dim3(64), 0, p);
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_NEAR(out[i], float(i) + 1.0f, 1e-4) << i;
}

TEST(Asm, SignedArithmetic)
{
    AsmKernel k = assembleKernel(R"(
        .kernel signed
        .param ptr out
        gid %i
        cvt.s32.u32 %s, %i
        sub.s32 %s, %s, 5
        abs.s32 %a, %s
        min.s32 %m, %s, 0
        st.s32 $out[%i], %a
    )");
    Engine e;
    auto out = e.alloc<int32_t>(32);
    KernelParams p;
    p.push(out.addr());
    e.launch("signed", k.entry(), Dim3(1), Dim3(32), 0, p);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], std::abs(i - 5)) << i;
}

/** Run a one-output-per-lane kernel over a single warp. */
template <typename T>
std::vector<T>
runLaneKernel(const std::string &body,
              const std::string &extraParams = "")
{
    AsmKernel k = assembleKernel(".kernel t\n.param ptr out\n" +
                                 extraParams + body);
    Engine e;
    auto out = e.alloc<T>(32);
    KernelParams p;
    p.push(out.addr());
    e.launch("t", k.entry(), Dim3(1), Dim3(32), 0, p);
    return out.toHost();
}

TEST(AsmOps, IntegerArithmetic)
{
    auto r = runLaneKernel<uint32_t>(R"(
        lane %l
        mul.u32 %a, %l, 7
        add.u32 %a, %a, 3
        sub.u32 %a, %a, %l
        st.u32 $out[%l], %a
    )");
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(r[l], l * 7 + 3 - l) << l;
}

TEST(AsmOps, DivRemByZeroAreDefined)
{
    auto r = runLaneKernel<uint32_t>(R"(
        lane %l
        div.u32 %d, 100, %l    ; lane 0 divides by zero -> 0
        rem.u32 %m, 100, %l
        add.u32 %s, %d, %m
        st.u32 $out[%l], %s
    )");
    EXPECT_EQ(r[0], 0u);
    for (uint32_t l = 1; l < 32; ++l)
        EXPECT_EQ(r[l], 100 / l + 100 % l) << l;
}

TEST(AsmOps, ShiftsBeyondWidthAreZero)
{
    auto r = runLaneKernel<uint32_t>(R"(
        lane %l
        shl.u32 %a, 1, %l
        shl.u32 %b, 1, 40
        shr.u32 %c, %a, %l
        add.u32 %s, %b, %c
        st.u32 $out[%l], %s
    )");
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(r[l], 1u) << l; // b==0, c==1
}

TEST(AsmOps, FloatMinMaxNegAbs)
{
    auto r = runLaneKernel<float>(R"(
        lane %l
        cvt.f32.u32 %x, %l
        sub.f32 %x, %x, 15.5
        neg.f32 %n, %x
        max.f32 %m, %x, %n     ; |x|
        abs.f32 %a, %x
        sub.f32 %d, %m, %a     ; must be 0
        min.f32 %z, %d, 1.0
        add.f32 %r, %a, %z
        st.f32 $out[%l], %r
    )");
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_FLOAT_EQ(r[l], std::fabs(float(l) - 15.5f)) << l;
}

TEST(AsmOps, FmaMatchesMulAdd)
{
    auto r = runLaneKernel<float>(R"(
        lane %l
        cvt.f32.u32 %x, %l
        fma.f32 %y, %x, 2.0, 1.0
        st.f32 $out[%l], %y
    )");
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_FLOAT_EQ(r[l], 2.0f * float(l) + 1.0f) << l;
}

TEST(AsmOps, CvtRoundTrips)
{
    auto r = runLaneKernel<int32_t>(R"(
        lane %l
        cvt.s32.u32 %s, %l
        sub.s32 %s, %s, 16
        cvt.f32.s32 %f, %s
        mul.f32 %f, %f, 2.0
        cvt.s32.f32 %r, %f
        st.s32 $out[%l], %r
    )");
    for (int l = 0; l < 32; ++l)
        EXPECT_EQ(r[l], 2 * (l - 16)) << l;
}

TEST(AsmOps, ScalarF32ParamBroadcast)
{
    AsmKernel k = assembleKernel(R"(
        .kernel scale
        .param ptr out
        .param f32 s
        lane %l
        cvt.f32.u32 %x, %l
        mul.f32 %x, %x, $s
        st.f32 $out[%l], %x
    )");
    Engine e;
    auto out = e.alloc<float>(32);
    KernelParams p;
    p.push(out.addr()).push(1.5f);
    e.launch("scale", k.entry(), Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_FLOAT_EQ(out[l], 1.5f * float(l)) << l;
}

TEST(AsmOps, HexImmediatesAndBitops)
{
    auto r = runLaneKernel<uint32_t>(R"(
        lane %l
        or.u32 %a, %l, 0x100
        and.u32 %b, %a, 0xff
        xor.u32 %c, %b, %l
        st.u32 $out[%l], %c
    )");
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(r[l], 0u) << l;
}

TEST(AsmOps, SharedAtomicAdd)
{
    AsmKernel k = assembleKernel(R"(
        .kernel satom
        .param ptr out
        lane %l
        rem.u32 %b, %l, 2
        atoms.add.u32 %old, sm[%b], 1
        bar
        if.lt.u32 %l, 2
          lds.u32 %v, sm[%l]
          st.u32 $out[%l], %v
        endif
    )");
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    out.fill(0);
    KernelParams p;
    p.push(out.addr());
    e.launch("satom", k.entry(), Dim3(1), Dim3(32), 8, p);
    EXPECT_EQ(out[0], 16u);
    EXPECT_EQ(out[1], 16u);
}

// --- Error handling ---

TEST(AsmErrors, AllDiagnosticsCarryStatus)
{
    auto expectError = [](const char *src, const char *pattern) {
        // The throwing entry point raises gwc::Error...
        EXPECT_THROW(assembleKernel(src), Error) << src;
        // ...and the non-throwing one returns the same Status.
        Result<AsmKernel> r = tryAssembleKernel(src);
        ASSERT_FALSE(r.ok()) << src;
        EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
        EXPECT_NE(r.status().message().find(pattern),
                  std::string::npos)
            << "wanted '" << pattern << "' in '"
            << r.status().message() << "'";
    };
    expectError("gid %i\n", "missing .kernel");
    expectError(".kernel k\nbogus %a, %b\n", "unknown instruction");
    expectError(".kernel k\nadd.u32 %d, %undef, 1\n",
                "read before write");
    expectError(".kernel k\n.param u32 n\nld.f32 %x, $n[%i]\n",
                "not a ptr");
    expectError(".kernel k\nif.lt.u32 1, 2\n", "unterminated");
    expectError(".kernel k\nendif\n", "endif without");
    expectError(".kernel k\nmov.q64 %a, 1\n", "unknown type");
    expectError(".kernel k\ngid %i\nif.lt.u32 %i, 4\nbar\nendif\n",
                "bar inside divergent");
    expectError(".kernel k\nadd.u32 %d, zzz, 1\n", "bad immediate");
    expectError(".kernel k\n.param ptr p\nst.u32 $p, 1\n",
                "memory reference");
}

TEST(AsmErrors, DiagnosticsPointAtLineColumnAndToken)
{
    // Line 3, and the offending token is the undefined register.
    Result<AsmKernel> r =
        tryAssembleKernel(".kernel k\ngid %i\nadd.u32 %d, %undef, 1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().message(),
              "GKS:3:13: register %undef read before write"
              " near '%undef'");

    // Column 1 for a bad mnemonic; the token is echoed.
    r = tryAssembleKernel(".kernel k\nbogus %a, %b\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("GKS:2:1:"),
              std::string::npos)
        << r.status().message();
    EXPECT_NE(r.status().message().find("near 'bogus'"),
              std::string::npos)
        << r.status().message();

    // End-of-input diagnostics carry the line past the last one seen.
    r = tryAssembleKernel(".kernel k\nif.lt.u32 1, 2\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("GKS:"), std::string::npos);
    EXPECT_NE(r.status().message().find("unterminated"),
              std::string::npos);
}

// --- The headline property: DSL and GKS agree on characteristics ---

WarpTask
dslSaxpy(Warp &w)
{
    uint64_t x = w.param<uint64_t>(0);
    uint64_t y = w.param<uint64_t>(1);
    uint32_t n = w.param<uint32_t>(2);
    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<uint32_t> xv = w.ldg<uint32_t>(x, i);
        Reg<uint32_t> yv = w.ldg<uint32_t>(y, i);
        w.stg<uint32_t>(y, i, xv + yv);
    });
    co_return;
}

TEST(Asm, CharacterizationMatchesDslKernel)
{
    const char *src = R"(
        .kernel saxpy
        .param ptr x
        .param ptr y
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          ld.u32 %a, $x[%i]
          ld.u32 %b, $y[%i]
          add.u32 %c, %a, %b
          st.u32 $y[%i], %c
        endif
    )";
    AsmKernel k = assembleKernel(src);

    auto runOne = [&](bool useAsm) {
        Engine e;
        const uint32_t n = 2048;
        auto x = e.alloc<uint32_t>(n);
        auto y = e.alloc<uint32_t>(n);
        KernelParams p;
        p.push(x.addr()).push(y.addr()).push(n);
        metrics::Profiler prof;
        e.addHook(&prof);
        if (useAsm)
            e.launch("k", k.entry(), Dim3(16), Dim3(128), 0, p);
        else
            e.launch("k", dslSaxpy, Dim3(16), Dim3(128), 0, p);
        return prof.finalize("X")[0];
    };

    auto dsl = runOne(false);
    auto gks = runOne(true);
    // Same dynamic instruction count and identical characteristic
    // vector: the front ends are observationally equivalent.
    EXPECT_EQ(dsl.warpInstrs, gks.warpInstrs);
    for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
        EXPECT_NEAR(dsl.metrics[c], gks.metrics[c], 1e-9)
            << metrics::characteristicName(c);
}

TEST(Asm, ListingCoversStaticPcs)
{
    AsmKernel k = assembleKernel(R"(
        ; comment-only lines own no PC
        .kernel pcs
        .param ptr out
        gid %i
        if.lt.u32 %i, 64   ; trailing comment stripped
          st.u32 $out[%i], %i
        endif
        bar
    )");
    const auto &lst = k.listing();
    // gid, if header, st, bar — else/endif bookkeeping owns no PC.
    ASSERT_EQ(lst.size(), 4u);
    EXPECT_EQ(lst[0], "gid %i");
    EXPECT_EQ(lst[1], "if.lt.u32 %i, 64");
    EXPECT_EQ(lst[2], "st.u32 $out[%i], %i");
    EXPECT_EQ(lst[3], "bar");
}

TEST(Asm, HotspotPcsMatchListing)
{
    AsmKernel k = assembleKernel(R"(
        .kernel hot
        .param ptr out
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          mul.u32 %v, %i, 3
          st.u32 $out[%i], %v
        endif
    )");
    Engine e;
    const uint32_t n = 100;
    auto out = e.alloc<uint32_t>(128);
    KernelParams p;
    p.push(out.addr()).push(n);
    metrics::HotspotProfiler hot;
    e.addHook(&hot);
    e.launch("hot", k.entry(), Dim3(2), Dim3(64), 0, p);
    auto tables = hot.finalize("GKS");
    ASSERT_EQ(tables.size(), 1u);
    const auto &pcs = tables[0].pcs;
    // Every observed PC indexes into the listing.
    for (const auto &[pc, c] : pcs)
        EXPECT_LT(pc, k.listing().size()) << "pc " << pc;
    // 4 warps total (2 CTAs x 2 warps). gid (PC 0) is one instr per
    // warp; the if header (PC 1) is two — the compare and the branch
    // itself; mul (PC 2) is one; st (PC 3) is two — the address
    // computation and the store.
    ASSERT_TRUE(pcs.count(0));
    ASSERT_TRUE(pcs.count(1));
    EXPECT_EQ(pcs.at(0).instrs, 4u);
    EXPECT_EQ(pcs.at(1).instrs, 8u);
    ASSERT_TRUE(pcs.count(2));
    ASSERT_TRUE(pcs.count(3));
    EXPECT_EQ(pcs.at(2).instrs, 4u);
    EXPECT_EQ(pcs.at(3).instrs, 8u);
    // The last warp (ids 64..127 vs n=100) diverges at the if.
    EXPECT_EQ(pcs.at(1).divBranches, 1u);
}

// --- Bytecode compiler: golden listing, fusion, escape hatch ---

TEST(AsmBytecode, GoldenListingAndPcMap)
{
    AsmKernel k = assembleKernel(R"(
        .kernel saxpy
        .param ptr x
        .param ptr y
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          ld.u32 %a, $x[%i]
          ld.u32 %b, $y[%i]
          add.u32 %c, %a, %b
          st.u32 $y[%i], %c
        endif
    )");
    // One slot per bytecode op; the fused heads keep their
    // constituents' slots intact so jump targets stay valid.
    const std::vector<std::string> want = {
        "0: gid r0 ; pc=0",
        "1: brif.lt.u32 r0, k0 -> 7 ; pc=1",
        "2: ld+ld r1, p0[r0] ; pc=2",
        "3: ld r2, p1[r0] ; pc=3",
        "4: add.u r3, r1, r2 +st ; pc=4",
        "5: st p1[r0], r3 ; pc=5",
        "6: elsej -> 7 ; pc=1",
        "7: endif ; pc=1",
    };
    EXPECT_EQ(k.bytecodeListing(), want);
    // The PC map resolves every bytecode index to the static PC of
    // the source listing; structural ops inherit their header's PC.
    const std::vector<uint32_t> wantPcs = {0, 1, 2, 3, 4, 5, 1, 1};
    EXPECT_EQ(k.pcMap(), wantPcs);
    // All mapped PCs index into the source listing.
    for (uint32_t pc : k.pcMap())
        EXPECT_LT(pc, k.listing().size());
}

TEST(AsmBytecode, FusesAffineChainsAndLoops)
{
    AsmKernel k = assembleKernel(R"(
        .kernel fuse2
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        mul.u32 %j, %i, 1
        add.u32 %j, %j, 0
        ld.u32 %x, $in[%j]
        mul.u32 %x, %x, 3
        st.u32 $out[%j], %x
        mov.u32 %c, 0
        while.lt.u32 %c, 2
          add.u32 %c, %c, 1
        endwhile
        bar
        st.u32 $out[%i], %c
    )");
    const auto &bl = k.bytecodeListing();
    ASSERT_EQ(bl.size(), 13u);
    EXPECT_EQ(bl[1], "1: mul+add.u r1, r0, k0 ; pc=1");
    EXPECT_EQ(bl[3], "3: ld+alu+st r2, p1[r1] ; pc=3");
    EXPECT_EQ(bl[7], "7: whileenter ; pc=7");
    EXPECT_EQ(bl[8], "8: whiletest.lt.u32 r3, k3 -> 11 ; pc=7");
    EXPECT_EQ(bl[10], "10: loopback -> 8 ; pc=7");
    EXPECT_EQ(bl[11], "11: bar ; pc=9");
}

TEST(AsmBytecode, InterpreterEscapeHatchMatches)
{
    AsmKernel k = assembleKernel(R"(
        .kernel esc
        .param ptr out
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          mul.u32 %v, %i, 5
          st.u32 $out[%i], %v
        endif
    )");
    auto runMode = [&](AsmExec mode) {
        Engine e;
        auto out = e.alloc<uint32_t>(64);
        out.fill(0);
        KernelParams p;
        p.push(out.addr()).push(60u);
        metrics::Profiler prof;
        e.addHook(&prof);
        e.launch("esc", k.entry(mode), Dim3(1), Dim3(64), 0, p);
        return std::make_pair(out.toHost(), prof.finalize("E")[0]);
    };
    auto compiled = runMode(AsmExec::Compiled);
    auto interp = runMode(AsmExec::Interpreted);
    EXPECT_EQ(compiled.first, interp.first);
    EXPECT_EQ(compiled.second.warpInstrs, interp.second.warpInstrs);
    for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
        EXPECT_EQ(compiled.second.metrics[c], interp.second.metrics[c])
            << metrics::characteristicName(c);

    // GWC_GKS_INTERP=1 reroutes Auto to the interpreter; results stay
    // identical, so the hatch is observable only through timing.
    ::setenv("GWC_GKS_INTERP", "1", 1);
    auto hatch = runMode(AsmExec::Auto);
    ::unsetenv("GWC_GKS_INTERP");
    EXPECT_EQ(hatch.first, compiled.first);
    EXPECT_EQ(hatch.second.warpInstrs, compiled.second.warpInstrs);
}

} // anonymous namespace
} // namespace gwc::simt
