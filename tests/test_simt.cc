/**
 * @file
 * Unit tests for the SIMT execution engine: correctness of lane-wise
 * execution, divergence handling, barriers, shared memory, atomics,
 * and the instrumentation event stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simt/engine.hh"

namespace gwc::simt
{
namespace
{

/** Hook that tallies every event kind for assertions. */
class CountingHook : public ProfilerHook
{
  public:
    std::map<OpClass, uint64_t> instrs;
    uint64_t memEvents = 0;
    uint64_t branchEvents = 0;
    uint64_t divergentBranches = 0;
    uint64_t barriers = 0;
    uint64_t ctas = 0;
    uint64_t kernels = 0;
    uint64_t activeLanes = 0;
    uint64_t totalInstrs = 0;
    std::vector<MemEvent> mems;

    void kernelBegin(const KernelInfo &) override { ++kernels; }
    void ctaBegin(uint32_t) override { ++ctas; }

    void
    instr(const InstrEvent &ev) override
    {
        ++instrs[ev.cls];
        ++totalInstrs;
        activeLanes += laneCount(ev.active);
    }

    void
    mem(const MemEvent &ev) override
    {
        ++memEvents;
        mems.push_back(ev);
    }

    void
    branch(const BranchEvent &ev) override
    {
        ++branchEvents;
        if (!isUniform(ev.taken, ev.active))
            ++divergentBranches;
    }

    void barrier(uint32_t) override { ++barriers; }
};

WarpTask
vecAddKernel(Warp &w)
{
    uint64_t a = w.param<uint64_t>(0);
    uint64_t b = w.param<uint64_t>(1);
    uint64_t c = w.param<uint64_t>(2);
    uint32_t n = w.param<uint32_t>(3);

    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<float> x = w.ldg<float>(a, i);
        Reg<float> y = w.ldg<float>(b, i);
        w.stg<float>(c, i, x + y);
    });
    co_return;
}

TEST(Engine, VectorAdd)
{
    Engine e;
    const uint32_t n = 1000;
    auto a = e.alloc<float>(n);
    auto b = e.alloc<float>(n);
    auto c = e.alloc<float>(n);
    for (uint32_t i = 0; i < n; ++i) {
        a.set(i, float(i));
        b.set(i, 2.0f * float(i));
    }

    KernelParams p;
    p.push(a.addr()).push(b.addr()).push(c.addr()).push(n);
    LaunchStats st =
        e.launch("vecadd", vecAddKernel, Dim3(8), Dim3(128), 0, p);

    for (uint32_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(c[i], 3.0f * float(i)) << "i=" << i;
    EXPECT_EQ(st.ctas, 8u);
    EXPECT_EQ(st.warps, 32u);
    EXPECT_EQ(st.threads, 1024u);
    EXPECT_GT(st.warpInstrs, 0u);
}

TEST(Engine, PartialWarpMasksTail)
{
    Engine e;
    const uint32_t n = 40; // 1 CTA of 48 threads -> second warp partial
    auto a = e.alloc<float>(n);
    auto b = e.alloc<float>(n);
    auto c = e.alloc<float>(n);
    for (uint32_t i = 0; i < n; ++i) {
        a.set(i, 1.0f);
        b.set(i, float(i));
    }
    KernelParams p;
    p.push(a.addr()).push(b.addr()).push(c.addr()).push(n);
    e.launch("vecadd", vecAddKernel, Dim3(1), Dim3(48), 0, p);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(c[i], 1.0f + float(i));
}

WarpTask
divergeKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> r = w.imm(0u);
    w.IfElse(
        (i & 1u) == w.imm(0u),
        [&] { r = i * 2u; },
        [&] { r = i * 3u; });
    w.stg<uint32_t>(out, i, r);
    co_return;
}

TEST(Engine, DivergentIfElseBothPaths)
{
    Engine e;
    const uint32_t n = 64;
    auto out = e.alloc<uint32_t>(n);
    KernelParams p;
    p.push(out.addr());
    CountingHook hook;
    e.addHook(&hook);
    e.launch("diverge", divergeKernel, Dim3(1), Dim3(n), 0, p);

    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], (i % 2 == 0) ? i * 2 : i * 3) << i;
    EXPECT_GT(hook.divergentBranches, 0u);
}

WarpTask
whileKernel(Warp &w)
{
    // Each thread iterates tid%7 times: data-dependent trip counts
    // within a warp exercise loop divergence.
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> cnt = i % 7u;
    Reg<uint32_t> acc = w.imm(0u);
    w.While([&] { return cnt > 0u; },
            [&] {
                acc = acc + cnt;
                cnt = cnt - 1u;
            });
    w.stg<uint32_t>(out, i, acc);
    co_return;
}

TEST(Engine, DivergentWhileLoop)
{
    Engine e;
    const uint32_t n = 96;
    auto out = e.alloc<uint32_t>(n);
    KernelParams p;
    p.push(out.addr());
    e.launch("while", whileKernel, Dim3(3), Dim3(32), 0, p);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t c = i % 7, expect = c * (c + 1) / 2;
        EXPECT_EQ(out[i], expect) << i;
    }
}

WarpTask
reduceKernel(Warp &w)
{
    // Classic shared-memory tree reduction; exercises barriers
    // between warps of one CTA.
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    uint32_t ctaThreads = w.ctaDim().x;

    Reg<uint32_t> tid = w.tidLinear();
    Reg<uint32_t> gid = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, gid);
    w.stsE<float>(0, tid, x);
    co_await w.barrier();

    for (uint32_t s = ctaThreads / 2; w.uniform(s > 0); s >>= 1) {
        w.If(tid < s, [&] {
            Reg<float> a = w.ldsE<float>(0, tid);
            Reg<float> b = w.ldsE<float>(0, tid + s);
            w.stsE<float>(0, tid, a + b);
        });
        co_await w.barrier();
    }

    w.If(tid == w.imm(0u), [&] {
        Reg<float> r = w.ldsE<float>(0, tid);
        w.stg<float>(out, w.imm(w.ctaId().x), r);
    });
    co_return;
}

TEST(Engine, SharedMemoryTreeReduction)
{
    Engine e;
    const uint32_t ctaThreads = 128, ctas = 4;
    const uint32_t n = ctaThreads * ctas;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(ctas);
    float expect[4] = {0, 0, 0, 0};
    for (uint32_t i = 0; i < n; ++i) {
        in.set(i, float(i % 13));
        expect[i / ctaThreads] += float(i % 13);
    }
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    CountingHook hook;
    e.addHook(&hook);
    e.launch("reduce", reduceKernel, Dim3(ctas), Dim3(ctaThreads),
             ctaThreads * sizeof(float), p);

    for (uint32_t c = 0; c < ctas; ++c)
        EXPECT_FLOAT_EQ(out[c], expect[c]) << c;
    // 8 barriers per CTA (1 + log2(128)), 4 warps each, 4 CTAs.
    EXPECT_EQ(hook.barriers, 8u * 4u * 4u);
    EXPECT_GT(hook.instrs[OpClass::MemShared], 0u);
    EXPECT_GT(hook.instrs[OpClass::Sync], 0u);
}

WarpTask
atomicKernel(Warp &w)
{
    uint64_t counter = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint64_t> addr = w.gaddr<uint32_t>(counter, i % 4u);
    w.atomicAddGlobal<uint32_t>(addr, w.imm(1u));
    co_return;
}

TEST(Engine, GlobalAtomics)
{
    Engine e;
    auto counter = e.alloc<uint32_t>(4);
    counter.fill(0);
    KernelParams p;
    p.push(counter.addr());
    e.launch("atomic", atomicKernel, Dim3(2), Dim3(64), 0, p);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(counter[i], 32u);
}

TEST(Engine, EventAccounting)
{
    Engine e;
    const uint32_t n = 64;
    auto a = e.alloc<float>(n);
    auto b = e.alloc<float>(n);
    auto c = e.alloc<float>(n);
    a.fill(1.0f);
    b.fill(2.0f);
    KernelParams p;
    p.push(a.addr()).push(b.addr()).push(c.addr()).push(n);
    CountingHook hook;
    e.addHook(&hook);
    LaunchStats st =
        e.launch("vecadd", vecAddKernel, Dim3(2), Dim3(32), 0, p);

    EXPECT_EQ(hook.kernels, 1u);
    EXPECT_EQ(hook.ctas, 2u);
    EXPECT_EQ(hook.totalInstrs, st.warpInstrs);
    // 3 memory instructions per warp (2 loads + 1 store), 2 warps.
    EXPECT_EQ(hook.instrs[OpClass::MemGlobal], 6u);
    EXPECT_EQ(hook.memEvents, 6u);
    // One branch (the bounds If) per warp.
    EXPECT_EQ(hook.branchEvents, 2u);
    EXPECT_EQ(hook.divergentBranches, 0u);
    // Full warps, all lanes always active.
    EXPECT_EQ(hook.activeLanes, hook.totalInstrs * kWarpSize);
}

TEST(Engine, CoalescedVsStridedAddresses)
{
    Engine e;
    const uint32_t n = 64;
    auto a = e.alloc<float>(n);
    auto b = e.alloc<float>(n);
    auto c = e.alloc<float>(n);
    a.fill(0.0f);
    b.fill(0.0f);
    KernelParams p;
    p.push(a.addr()).push(b.addr()).push(c.addr()).push(n);
    CountingHook hook;
    e.addHook(&hook);
    e.launch("vecadd", vecAddKernel, Dim3(2), Dim3(32), 0, p);

    ASSERT_FALSE(hook.mems.empty());
    // Unit-stride float accesses from a full warp: lane addresses are
    // consecutive and span exactly one 128-byte segment.
    const MemEvent &ev = hook.mems.front();
    EXPECT_EQ(ev.accessSize, sizeof(float));
    for (uint32_t l = 1; l < kWarpSize; ++l)
        EXPECT_EQ(ev.addr[l] - ev.addr[l - 1], sizeof(float));
    EXPECT_EQ(ev.addr[0] / kSegmentBytes,
              ev.addr[kWarpSize - 1] / kSegmentBytes);
}

WarpTask
depChainKernel(Warp &w)
{
    // Serial dependence chain: every add depends on the previous one.
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> acc = w.cast<float>(i);
    for (int k = 0; k < 16; ++k)
        acc = acc + 1.0f;
    w.stg<float>(out, i, acc);
    co_return;
}

class DepHook : public ProfilerHook
{
  public:
    std::vector<uint16_t> dists;

    void
    instr(const InstrEvent &ev) override
    {
        if (ev.cls == OpClass::FpAlu)
            dists.push_back(ev.depDist[0]);
    }
};

TEST(Engine, DependenceDistances)
{
    Engine e;
    auto out = e.alloc<float>(32);
    KernelParams p;
    p.push(out.addr());
    DepHook hook;
    e.addHook(&hook);
    e.launch("chain", depChainKernel, Dim3(1), Dim3(32), 0, p);

    ASSERT_EQ(hook.dists.size(), 16u);
    // Each add consumes the previous instruction's result.
    for (uint16_t d : hook.dists)
        EXPECT_EQ(d, 1u);
}

WarpTask
broadcastKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> lane = w.laneId();
    Reg<uint32_t> b = w.broadcast(lane, 5);
    Reg<uint32_t> s = w.shflDown(lane, 1);
    w.stg<uint32_t>(out, lane, b + s);
    co_return;
}

TEST(Engine, ShuffleAndBroadcast)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    e.launch("shfl", broadcastKernel, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l) {
        uint32_t shfl = l + 1 < 32 ? l + 1 : l;
        EXPECT_EQ(out[l], 5u + shfl) << l;
    }
}

WarpTask
selectKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> r =
        w.select((i & 1u) == w.imm(0u), i * 10u, i * 100u);
    w.stg<uint32_t>(out, i, r);
    co_return;
}

TEST(Engine, SelectPredicatedMove)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    CountingHook hook;
    e.addHook(&hook);
    e.launch("select", selectKernel, Dim3(1), Dim3(32), 0, p);
    for (uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], (i % 2 == 0) ? i * 10 : i * 100);
    // select is predication, not a branch.
    EXPECT_EQ(hook.branchEvents, 0u);
}

TEST(Engine, VoteOps)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    bool sawAny = false, sawAll = false;
    LaneMask ball = 0;
    auto fn = [&](Warp &w) -> WarpTask {
        Reg<uint32_t> lane = w.laneId();
        sawAny = w.any(lane > 30u);
        sawAll = w.all(lane > 30u);
        ball = w.ballot(lane < 4u);
        w.stg<uint32_t>(w.param<uint64_t>(0), lane, lane);
        co_return;
    };
    e.launch("vote", fn, Dim3(1), Dim3(32), 0, p);
    EXPECT_TRUE(sawAny);
    EXPECT_FALSE(sawAll);
    EXPECT_EQ(ball, 0xFu);
}

TEST(Engine, NestedDivergenceRestoresMask)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    out.fill(0);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> i = w.laneId();
        w.If(i < 16u, [&] {
            w.If((i & 1u) == w.imm(0u),
                 [&] { w.stg<uint32_t>(out, i, w.imm(7u)); });
            // All lanes < 16 (both parities) must execute this store.
            w.stg<uint32_t>(out, i + 16u, w.imm(9u));
        });
        co_return;
    };
    e.launch("nested", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t i = 0; i < 16; ++i) {
        EXPECT_EQ(out[i], (i % 2 == 0) ? 7u : 0u);
        EXPECT_EQ(out[i + 16], 9u);
    }
}

TEST(Engine, MultipleLaunchesAccumulateOnHeap)
{
    Engine e;
    auto buf = e.alloc<uint32_t>(64);
    buf.fill(1);
    KernelParams p;
    p.push(buf.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t b = w.param<uint64_t>(0);
        Reg<uint32_t> i = w.globalIdX();
        Reg<uint32_t> v = w.ldg<uint32_t>(b, i);
        w.stg<uint32_t>(b, i, v + 1u);
        co_return;
    };
    for (int k = 0; k < 3; ++k)
        e.launch("inc", fn, Dim3(2), Dim3(32), 0, p);
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(buf[i], 4u);
}

TEST(Engine, BadLaunchGeometryFails)
{
    Engine e;
    auto fn = [](Warp &) -> WarpTask { co_return; };
    EXPECT_THROW(e.launch("bad", fn, Dim3(1), Dim3(2048), 0, {}),
                 gwc::Error);
    EXPECT_THROW(e.launch("bad", fn, Dim3(0), Dim3(32), 0, {}),
                 gwc::Error);
    try {
        e.launch("bad", fn, Dim3(1), Dim3(2048), 0, {});
    } catch (const gwc::Error &err) {
        EXPECT_EQ(err.code(), gwc::ErrorCode::InvalidArgument);
        EXPECT_NE(std::string(err.what()).find("CTA size"),
                  std::string::npos);
    }
}

TEST(Memory, OutOfBoundsPanics)
{
    GlobalMemory m;
    uint64_t a = m.allocBytes(16);
    m.write<uint32_t>(a, 5);
    EXPECT_EQ(m.read<uint32_t>(a), 5u);
    EXPECT_DEATH(m.read<uint32_t>(a + 16), "out of bounds");
    EXPECT_DEATH(m.read<uint32_t>(0), "out of bounds");
}

TEST(Memory, BufferRoundTrip)
{
    Engine e;
    auto b = e.alloc<double>(10);
    std::vector<double> host{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    b.fromHost(host);
    EXPECT_EQ(b.toHost(), host);
}

TEST(Params, TypedRoundTrip)
{
    KernelParams p;
    p.push<uint64_t>(0xDEADBEEFCAFEull).push<float>(1.5f).push<int32_t>(-7);
    EXPECT_EQ(p.get<uint64_t>(0), 0xDEADBEEFCAFEull);
    EXPECT_FLOAT_EQ(p.get<float>(1), 1.5f);
    EXPECT_EQ(p.get<int32_t>(2), -7);
    EXPECT_EQ(p.size(), 3u);
}

} // anonymous namespace
} // namespace gwc::simt
