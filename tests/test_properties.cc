/**
 * @file
 * Parameterized property tests: invariants that must hold across
 * sweeps of launch geometry, random inputs, window sizes and design
 * points, checked against brute-force oracles where one exists.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <list>
#include <map>
#include <optional>

#include <sstream>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "common/rng.hh"
#include "metrics/ilp.hh"
#include "metrics/profile_io.hh"
#include "metrics/profiler.hh"
#include "metrics/reuse.hh"
#include "metrics/hotspots.hh"
#include "runtime/inject.hh"
#include "simt/asm.hh"
#include "simt/engine.hh"
#include "telemetry/trace.hh"

#include "gks_kernels.hh"
#include "stats/pca.hh"
#include "timing/gpu.hh"
#include "workloads/suite.hh"

namespace gwc
{
namespace
{

using simt::Dim3;
using simt::Engine;
using simt::KernelParams;
using simt::Reg;
using simt::Warp;
using simt::WarpTask;

// ----------------------------------------------------------------
// Engine: correctness across launch geometries
// ----------------------------------------------------------------

struct Geometry
{
    uint32_t ctaSize;
    uint32_t ctas;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{};

WarpTask
affineKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    uint32_t n = w.param<uint32_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<uint32_t> v = i * 3u + 7u;
        w.stg<uint32_t>(out, i, v);
    });
    co_return;
}

TEST_P(GeometrySweep, AffineMapCorrectEverywhere)
{
    auto [ctaSize, ctas] = GetParam();
    uint32_t n = ctaSize * ctas - ctaSize / 3; // ragged tail
    Engine e;
    auto out = e.alloc<uint32_t>(std::max<uint32_t>(n, 1));
    KernelParams p;
    p.push(out.addr()).push(n);
    auto st = e.launch("affine", affineKernel, Dim3(ctas),
                       Dim3(ctaSize), 0, p);
    EXPECT_EQ(st.threads, uint64_t(ctaSize) * ctas);
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], i * 3 + 7) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Engine, GeometrySweep,
    ::testing::Values(Geometry{32, 1}, Geometry{33, 2},
                      Geometry{64, 3}, Geometry{96, 2},
                      Geometry{128, 5}, Geometry{250, 3},
                      Geometry{512, 2}, Geometry{1000, 2},
                      Geometry{1024, 1}),
    [](const auto &info) {
        return "cta" + std::to_string(info.param.ctaSize) + "x" +
               std::to_string(info.param.ctas);
    });

/** Event-stream invariants hold for any kernel/geometry. */
class InvariantHook : public simt::ProfilerHook
{
  public:
    uint64_t instrs = 0;
    uint64_t activeLanes = 0;
    bool maskViolation = false;

    void
    instr(const simt::InstrEvent &ev) override
    {
        ++instrs;
        uint32_t lanes = simt::laneCount(ev.active);
        activeLanes += lanes;
        if (lanes == 0)
            maskViolation = true; // no instruction without lanes
    }

    void
    mem(const simt::MemEvent &ev) override
    {
        // The mem payload's mask must match a nonempty active set.
        if (ev.active == 0)
            maskViolation = true;
    }
};

TEST_P(GeometrySweep, EventInvariants)
{
    auto [ctaSize, ctas] = GetParam();
    uint32_t n = ctaSize * ctas;
    Engine e;
    auto out = e.alloc<uint32_t>(n);
    KernelParams p;
    p.push(out.addr()).push(n);
    InvariantHook hook;
    e.addHook(&hook);
    auto st = e.launch("affine", affineKernel, Dim3(ctas),
                       Dim3(ctaSize), 0, p);
    EXPECT_EQ(hook.instrs, st.warpInstrs);
    EXPECT_FALSE(hook.maskViolation);
    EXPECT_LE(hook.activeLanes, hook.instrs * simt::kWarpSize);
}

// ----------------------------------------------------------------
// Reuse distance vs a brute-force LRU-stack oracle
// ----------------------------------------------------------------

struct ReuseCase
{
    uint64_t universe;
    uint32_t length;
    uint64_t seed;
};

class ReuseOracle : public ::testing::TestWithParam<ReuseCase>
{};

TEST_P(ReuseOracle, MatchesBruteForceStack)
{
    auto [universe, length, seed] = GetParam();
    Rng rng(seed);
    metrics::ReuseDistanceAnalyzer fast;
    std::list<uint64_t> stack; // LRU stack, front = most recent
    uint64_t shortCnt = 0, medCnt = 0, cold = 0;

    for (uint32_t i = 0; i < length; ++i) {
        uint64_t line = rng.nextBelow(universe);
        fast.access(line);
        auto it = std::find(stack.begin(), stack.end(), line);
        if (it == stack.end()) {
            ++cold;
        } else {
            uint64_t dist = uint64_t(
                std::distance(stack.begin(), it));
            if (dist <= metrics::ReuseDistanceAnalyzer::kShort)
                ++shortCnt;
            if (dist <= metrics::ReuseDistanceAnalyzer::kMedium)
                ++medCnt;
            stack.erase(it);
        }
        stack.push_front(line);
    }
    EXPECT_EQ(fast.coldMisses(), cold);
    EXPECT_EQ(fast.shortReuses(), shortCnt);
    EXPECT_EQ(fast.mediumReuses(), medCnt);
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, ReuseOracle,
    ::testing::Values(ReuseCase{8, 2000, 1}, ReuseCase{40, 3000, 2},
                      ReuseCase{100, 3000, 3},
                      ReuseCase{1500, 5000, 4},
                      ReuseCase{5000, 5000, 5}),
    [](const auto &info) {
        return "u" + std::to_string(info.param.universe) + "n" +
               std::to_string(info.param.length);
    });

// ----------------------------------------------------------------
// ILP invariants over random dependence streams
// ----------------------------------------------------------------

class IlpProperties : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(IlpProperties, WindowMonotoneAndBounded)
{
    Rng rng(GetParam());
    metrics::IlpTracker t;
    for (int i = 0; i < 5000; ++i) {
        uint16_t d = rng.nextBelow(4) == 0
                         ? 0
                         : uint16_t(1 + rng.nextBelow(100));
        t.record(d);
    }
    double prev = 0.0;
    for (size_t w = 0; w < metrics::kIlpWindows.size(); ++w) {
        double ilp = t.ilp(w);
        EXPECT_GE(ilp, 1.0 - 1e-9);
        EXPECT_LE(ilp, double(metrics::kIlpWindows[w]) + 1e-9);
        EXPECT_GE(ilp + 1e-9, prev) << "window shrink @" << w;
        prev = ilp;
    }
}

INSTANTIATE_TEST_SUITE_P(Metrics, IlpProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ----------------------------------------------------------------
// Coalescing metric vs per-event oracle
// ----------------------------------------------------------------

WarpTask
gatherKernel(Warp &w)
{
    uint64_t idx = w.param<uint64_t>(0);
    uint64_t dat = w.param<uint64_t>(1);
    uint64_t out = w.param<uint64_t>(2);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> j = w.ldg<uint32_t>(idx, i);
    Reg<float> v = w.ldg<float>(dat, j);
    w.stg<float>(out, i, v);
    co_return;
}

class GatherSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(GatherSweep, TransactionsMatchSegmentOracle)
{
    Rng rng(GetParam());
    Engine e;
    const uint32_t n = 256, pool = 4096;
    auto idx = e.alloc<uint32_t>(n);
    auto dat = e.alloc<float>(pool);
    auto out = e.alloc<float>(n);
    std::vector<uint32_t> idxHost(n);
    for (uint32_t i = 0; i < n; ++i)
        idxHost[i] = uint32_t(rng.nextBelow(pool));
    idx.fromHost(idxHost);

    // Oracle: distinct 128B segments per warp of the gather load.
    uint64_t oracleTx = 0;
    for (uint32_t w = 0; w < n / 32; ++w) {
        std::set<uint64_t> segs;
        for (uint32_t l = 0; l < 32; ++l)
            segs.insert((dat.addr() + idxHost[w * 32 + l] * 4) / 128);
        oracleTx += segs.size();
    }
    // Plus the fully coalesced idx loads and out stores: 1 tx each.
    oracleTx += 2 * (n / 32);

    metrics::Profiler prof;
    e.addHook(&prof);
    KernelParams p;
    p.push(idx.addr()).push(dat.addr()).push(out.addr());
    e.launch("gather", gatherKernel, Dim3(n / 64), Dim3(64), 0, p);
    auto profs = prof.finalize("T");
    double txPerAcc = profs[0].metrics[metrics::kTxPerGmemAccess];
    double accesses = 3.0 * (n / 32); // 2 loads + 1 store per warp
    EXPECT_NEAR(txPerAcc, double(oracleTx) / accesses, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Metrics, GatherSweep,
                         ::testing::Values(7, 17, 27, 37));

// ----------------------------------------------------------------
// Clustering invariants on random data
// ----------------------------------------------------------------

class ClusterSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ClusterSweep, CutsProduceExactlyKClusters)
{
    Rng rng(GetParam());
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 17; ++i)
        rows.push_back({rng.nextDouble(), rng.nextDouble(),
                        rng.nextDouble()});
    auto m = stats::Matrix::fromRows(rows);
    for (auto link :
         {cluster::Linkage::Single, cluster::Linkage::Complete,
          cluster::Linkage::Average, cluster::Linkage::Ward}) {
        auto d = cluster::agglomerate(m, link);
        for (uint32_t k = 1; k <= 17; ++k) {
            auto labels = d.cut(k);
            std::set<int> uniq(labels.begin(), labels.end());
            EXPECT_EQ(uniq.size(), k)
                << cluster::linkageName(link) << " k=" << k;
            for (int l : labels) {
                EXPECT_GE(l, 0);
                EXPECT_LT(l, int(k));
            }
        }
    }
}

TEST_P(ClusterSweep, KmeansInvariants)
{
    Rng rng(GetParam());
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 25; ++i)
        rows.push_back({rng.nextDouble() * 3, rng.nextDouble()});
    auto m = stats::Matrix::fromRows(rows);

    double prevInertia = std::numeric_limits<double>::infinity();
    for (uint32_t k = 1; k <= 8; ++k) {
        Rng r2(GetParam() + k);
        auto res = cluster::kmeans(m, k, r2, 100, 8);
        // Labels valid, all clusters non-empty.
        auto sizes = res.sizes();
        for (uint32_t c = 0; c < k; ++c)
            EXPECT_GT(sizes[c], 0u) << "k=" << k;
        // Inertia decreases (weakly) with k, given enough restarts.
        EXPECT_LE(res.inertia, prevInertia * 1.02) << "k=" << k;
        prevInertia = std::min(prevInertia, res.inertia);
        // Centroid of each cluster is the mean of its members.
        for (uint32_t c = 0; c < k; ++c) {
            double mx = 0, my = 0;
            for (size_t i = 0; i < rows.size(); ++i)
                if (res.labels[i] == int(c)) {
                    mx += m(i, 0);
                    my += m(i, 1);
                }
            mx /= sizes[c];
            my /= sizes[c];
            EXPECT_NEAR(res.centroids(c, 0), mx, 1e-9);
            EXPECT_NEAR(res.centroids(c, 1), my, 1e-9);
        }
    }
}

TEST_P(ClusterSweep, CopheneticDominatesPointDistanceForSingleLink)
{
    // Single-linkage cophenetic distance never exceeds... actually:
    // it is the minimax path distance, so it is <= the direct
    // distance for single linkage.
    Rng rng(GetParam());
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 12; ++i)
        rows.push_back({rng.nextDouble() * 5, rng.nextDouble() * 5});
    auto m = stats::Matrix::fromRows(rows);
    auto d = cluster::agglomerate(m, cluster::Linkage::Single);
    for (uint32_t a = 0; a < 12; ++a)
        for (uint32_t b = a + 1; b < 12; ++b)
            EXPECT_LE(d.copheneticDistance(a, b),
                      stats::rowDistance(m, a, b) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cluster, ClusterSweep,
                         ::testing::Values(101, 202, 303, 404));

// ----------------------------------------------------------------
// PCA properties on random matrices
// ----------------------------------------------------------------

class PcaSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PcaSweep, EigenDecompositionIsExact)
{
    Rng rng(GetParam());
    const size_t n = 12;
    stats::Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            double v = rng.nextDouble() * 2 - 1;
            a(i, j) = v;
            a(j, i) = v;
        }
    std::vector<double> ev;
    stats::Matrix vec;
    stats::jacobiEigen(a, ev, vec);

    // Trace preserved.
    double trace = 0, evSum = 0;
    for (size_t i = 0; i < n; ++i) {
        trace += a(i, i);
        evSum += ev[i];
    }
    EXPECT_NEAR(trace, evSum, 1e-9);

    // A v_i = lambda_i v_i.
    for (size_t i = 0; i < n; ++i) {
        for (size_t r = 0; r < n; ++r) {
            double av = 0;
            for (size_t c = 0; c < n; ++c)
                av += a(r, c) * vec(c, i);
            EXPECT_NEAR(av, ev[i] * vec(r, i), 1e-8);
        }
    }
}

TEST_P(PcaSweep, ScoresVarianceMatchesEigenvalues)
{
    Rng rng(GetParam());
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 300; ++i) {
        double a = rng.nextGaussian(), b = rng.nextGaussian();
        rows.push_back({a, a + 0.1 * b, b, rng.nextGaussian()});
    }
    auto res = stats::pca(stats::Matrix::fromRows(rows));
    size_t n = res.scores.rows();
    for (size_t c = 0; c < res.scores.cols(); ++c) {
        double var = 0;
        for (size_t r = 0; r < n; ++r)
            var += res.scores(r, c) * res.scores(r, c);
        var /= double(n);
        EXPECT_NEAR(var, res.eigenvalues[c], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Stats, PcaSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------------------
// Timing model sanity bounds across design points
// ----------------------------------------------------------------

class TimingSweep
    : public ::testing::TestWithParam<timing::GpuConfig>
{};

WarpTask
mixKernel(Warp &w)
{
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, i);
    for (int k = 0; k < 4; ++k)
        x = x * 1.01f + 0.5f;
    w.stg<float>(out, i, x);
    co_return;
}

TEST_P(TimingSweep, CyclesBoundedAndDeterministic)
{
    Engine e;
    const uint32_t n = 4096;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    timing::TraceCapture cap;
    e.addHook(&cap);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    e.launch("mix", mixKernel, Dim3(16), Dim3(256), 0, p);

    const auto &cfg = GetParam();
    auto r1 = timing::simulate(cap.traces()[0], cfg);
    auto r2 = timing::simulate(cap.traces()[0], cfg);
    EXPECT_EQ(r1.cycles, r2.cycles) << "nondeterministic sim";
    // Issue bound: at most one instruction per core per cycle.
    EXPECT_LE(r1.ipc, double(cfg.numCores) + 1e-9);
    // Cannot finish faster than perfectly parallel issue.
    EXPECT_GE(r1.cycles,
              r1.instrs / uint64_t(cfg.numCores) /
                  std::max<uint64_t>(1, 16));
    EXPECT_GT(r1.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Timing, TimingSweep,
    ::testing::ValuesIn(timing::designSpace()),
    [](const auto &info) {
        std::string n = info.param.name;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// ----------------------------------------------------------------
// Workloads remain correct at a larger scale
// ----------------------------------------------------------------

class ScaleSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(ScaleSweep, VerifiesAtScale2)
{
    workloads::SuiteOptions opts;
    opts.scale = 2;
    auto runs = workloads::runSuite({GetParam()}, opts);
    EXPECT_TRUE(runs[0].verified);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ScaleSweep,
    ::testing::Values("BLS", "SLA", "MUM", "SS", "KM", "HSORT",
                      "SPMV", "LBM"),
    [](const auto &info) { return info.param; });

// ----------------------------------------------------------------
// Fault isolation: a failure anywhere never perturbs the survivors
// ----------------------------------------------------------------

class FailureIsolationSweep
    : public ::testing::TestWithParam<std::string>
{};

/** The profile CSV bytes of a subset run, one workload injected to
 * fail; the surviving rows must be identical to a clean run with the
 * victim simply absent, regardless of which workload dies. */
TEST_P(FailureIsolationSweep, SurvivorRowsAreByteIdentical)
{
    const std::vector<std::string> names{"BLS", "RD", "MUM", "NW"};
    const std::string &victim = GetParam();

    auto csvOf = [](const std::vector<workloads::WorkloadRun> &runs) {
        std::ostringstream os;
        metrics::writeProfilesCsv(os, workloads::allProfiles(runs));
        return os.str();
    };

    std::vector<std::string> others;
    for (const auto &n : names)
        if (n != victim)
            others.push_back(n);
    workloads::SuiteOptions clean;
    clean.jobs = 2;
    std::string expected = csvOf(workloads::runSuite(others, clean));

    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("verify-mismatch@" + victim).ok());
    workloads::SuiteOptions opts;
    opts.jobs = 2;
    opts.inject = &plan;
    auto runs = workloads::runSuite(names, opts);
    EXPECT_EQ(workloads::suiteExitCode(runs), 2);
    EXPECT_EQ(csvOf(runs), expected) << "victim " << victim;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FailureIsolationSweep,
    ::testing::Values("BLS", "RD", "MUM", "NW"),
    [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// GKS executor identity: the compiled bytecode executor must be
// observationally indistinguishable from the tree interpreter — same
// profiles.csv bytes, same hotspot tables, same stats totals, same
// kernel output, and (serially) the same trace bytes — over every
// kernel in the mini-suite and the whole batch x jobs matrix.
// ---------------------------------------------------------------------

struct GksRunResult
{
    std::string profileCsv;
    std::string hotspots;
    std::string traceBytes;
    std::vector<uint32_t> output;
    uint64_t warpInstrs = 0;
};

GksRunResult
runGksKernel(const simt::AsmKernel &k, simt::AsmExec mode, uint32_t n,
             unsigned jobs, bool trace)
{
    using namespace simt;
    Engine e;
    e.setJobs(jobs);
    const uint32_t threads =
        ((std::max(n, 1u) + kGksSuiteCta - 1) / kGksSuiteCta) *
        kGksSuiteCta;
    auto out = e.alloc<uint32_t>(std::max(threads, 8u));
    auto in = e.alloc<uint32_t>(threads);
    out.fill(0);
    for (uint32_t i = 0; i < threads; ++i)
        in.set(i, i * 2654435761u % 1000u);
    KernelParams p;
    p.push(out.addr()).push(in.addr()).push(n);

    metrics::Profiler prof;
    metrics::HotspotProfiler hot;
    e.addHook(&prof);
    e.addHook(&hot);
    std::string tracePath;
    std::optional<telemetry::TraceWriter> tw;
    if (trace) {
        tracePath = testing::TempDir() + "gks_identity.trace";
        tw.emplace(tracePath);
        e.addHook(&*tw);
    }
    auto st = e.launch(k.name(), k.entry(mode),
                       Dim3(threads / kGksSuiteCta),
                       Dim3(kGksSuiteCta), kGksSuiteShared, p);

    GksRunResult r;
    r.warpInstrs = st.warpInstrs;
    std::ostringstream ps;
    metrics::writeProfilesCsv(ps, prof.finalize(k.name()));
    r.profileCsv = ps.str();
    std::ostringstream hs;
    for (const auto &t : hot.finalize(k.name()))
        metrics::renderHotspots(hs, t, 256, &k.listing());
    r.hotspots = hs.str();
    r.output = out.toHost();
    if (trace) {
        tw->close();
        std::ifstream f(tracePath, std::ios::binary);
        std::ostringstream bytes;
        bytes << f.rdbuf();
        r.traceBytes = bytes.str();
        std::remove(tracePath.c_str());
    }
    return r;
}

TEST(GksExecutorIdentity, CompiledMatchesInterpreterAcrossMatrix)
{
    for (const auto &tk : simt::kGksIdentitySuite) {
        simt::AsmKernel k = simt::assembleKernel(tk.source);
        for (uint32_t n : {1u, 7u, 64u, 4096u}) {
            for (unsigned jobs : {1u, 4u}) {
                // Trace-byte comparison needs a deterministic record
                // order, so it runs on the serial engine; the
                // aggregate views are jobs-invariant by construction.
                const bool trace = jobs == 1;
                auto itp = runGksKernel(k, simt::AsmExec::Interpreted,
                                        n, jobs, trace);
                auto cmp = runGksKernel(k, simt::AsmExec::Compiled, n,
                                        jobs, trace);
                const std::string where = std::string(tk.tag) +
                                          " n=" + std::to_string(n) +
                                          " jobs=" +
                                          std::to_string(jobs);
                EXPECT_EQ(itp.warpInstrs, cmp.warpInstrs) << where;
                EXPECT_EQ(itp.output, cmp.output) << where;
                EXPECT_EQ(itp.profileCsv, cmp.profileCsv) << where;
                EXPECT_EQ(itp.hotspots, cmp.hotspots) << where;
                if (trace) {
                    EXPECT_TRUE(itp.traceBytes == cmp.traceBytes)
                        << where << " trace diverged ("
                        << itp.traceBytes.size() << " vs "
                        << cmp.traceBytes.size() << " bytes)";
                }
            }
        }
    }
}

} // anonymous namespace
} // namespace gwc
