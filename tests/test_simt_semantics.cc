/**
 * @file
 * SIMT semantics stress tests: nested and mixed divergence,
 * register-merge rules under masks, determinism of the event
 * stream, and failure handling (barriers under divergence,
 * out-of-bounds shared memory).
 */

#include <gtest/gtest.h>

#include <vector>

#include "simt/engine.hh"

namespace gwc::simt
{
namespace
{

TEST(Semantics, WhileInsideIf)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    out.fill(0);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> l = w.laneId();
        // Only lanes >= 16 loop; each runs l-16 iterations.
        w.If(l >= 16u, [&] {
            Reg<uint32_t> c = l - 16u;
            Reg<uint32_t> acc = w.imm(100u);
            w.While([&] { return c > 0u; },
                    [&] {
                        acc = acc + 1u;
                        c = c - 1u;
                    });
            w.stg<uint32_t>(out, l, acc);
        });
        co_return;
    };
    e.launch("wif", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(out[l], l < 16 ? 0u : 100u + (l - 16)) << l;
}

TEST(Semantics, IfInsideWhileBothBranchesPerIteration)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> l = w.laneId();
        Reg<uint32_t> n = l % 5u;
        Reg<uint32_t> evens = w.imm(0u);
        Reg<uint32_t> odds = w.imm(0u);
        Reg<uint32_t> i = w.imm(0u);
        w.While([&] { return i < n; },
                [&] {
                    w.IfElse(
                        (i & 1u) == w.imm(0u),
                        [&] { evens = evens + 1u; },
                        [&] { odds = odds + 1u; });
                    i = i + 1u;
                });
        w.stg<uint32_t>(out, l, evens * 10u + odds);
    co_return;
    };
    e.launch("iw", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l) {
        uint32_t n = l % 5;
        uint32_t evens = (n + 1) / 2, odds = n / 2;
        EXPECT_EQ(out[l], evens * 10 + odds) << l;
    }
}

TEST(Semantics, TripleNestedIfRestoresMasksExactly)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    out.fill(0);
    KernelParams p;
    p.push(out.addr());
    std::vector<LaneMask> masks;
    auto fn = [&](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> l = w.laneId();
        masks.push_back(w.activeMask());
        w.If(l < 24u, [&] {
            masks.push_back(w.activeMask());
            w.If(l >= 8u, [&] {
                masks.push_back(w.activeMask());
                w.If((l & 1u) == w.imm(0u), [&] {
                    masks.push_back(w.activeMask());
                    w.stg<uint32_t>(out, l, w.imm(1u));
                });
                masks.push_back(w.activeMask());
            });
            masks.push_back(w.activeMask());
        });
        masks.push_back(w.activeMask());
        co_return;
    };
    e.launch("nest3", fn, Dim3(1), Dim3(32), 0, p);
    // Expected masks at each probe.
    EXPECT_EQ(masks[0], 0xFFFFFFFFu);
    EXPECT_EQ(masks[1], 0x00FFFFFFu);            // l < 24
    EXPECT_EQ(masks[2], 0x00FFFF00u);            // 8 <= l < 24
    EXPECT_EQ(masks[3], 0x00555500u);            // even only
    EXPECT_EQ(masks[4], 0x00FFFF00u);            // restored
    EXPECT_EQ(masks[5], 0x00FFFFFFu);
    EXPECT_EQ(masks[6], 0xFFFFFFFFu);
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(out[l], (l < 24 && l >= 8 && l % 2 == 0) ? 1u : 0u);
}

TEST(Semantics, RegisterWriteMergesOnlyActiveLanes)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> l = w.laneId();
        Reg<uint32_t> r = w.imm(5u);
        w.If(l < 10u, [&] {
            r = l * 100u; // merge: only lanes 0..9 updated
        });
        // Chained assignment through a second If.
        w.If(l >= 20u, [&] { r = r + 1u; });
        w.stg<uint32_t>(out, l, r);
        co_return;
    };
    e.launch("merge", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l) {
        uint32_t expect = l < 10 ? l * 100 : (l >= 20 ? 6 : 5);
        EXPECT_EQ(out[l], expect) << l;
    }
}

TEST(Semantics, WhileConditionWithSideLoadsIsMasked)
{
    // Pointer-chase through a linked list of differing lengths; the
    // While condition itself performs loads.
    Engine e;
    const uint32_t n = 32;
    auto next = e.alloc<uint32_t>(n + 1);
    auto out = e.alloc<uint32_t>(n);
    // Build chains: lane l starts at node l and walks until node 0
    // (node i points to i-4, floored at 0; sentinel stays 0).
    for (uint32_t i = 0; i <= n; ++i)
        next.set(i, i >= 4 ? i - 4 : 0);
    KernelParams p;
    p.push(next.addr()).push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t next = w.param<uint64_t>(0);
        uint64_t out = w.param<uint64_t>(1);
        Reg<uint32_t> node = w.laneId();
        Reg<uint32_t> hops = w.imm(0u);
        w.While([&] { return node != 0u; },
                [&] {
                    node = w.ldg<uint32_t>(next, node);
                    hops = hops + 1u;
                });
        w.stg<uint32_t>(out, w.laneId(), hops);
        co_return;
    };
    e.launch("chase", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l) {
        uint32_t expect = (l + 3) / 4; // hops to reach 0
        EXPECT_EQ(out[l], expect) << l;
    }
}

/** Records a digest of the full event stream. */
class DigestHook : public ProfilerHook
{
  public:
    uint64_t digest = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        digest ^= v;
        digest *= 1099511628211ull;
    }

    void
    instr(const InstrEvent &ev) override
    {
        mix(uint64_t(ev.cls));
        mix(ev.active);
        mix(ev.warpId);
    }

    void
    mem(const MemEvent &ev) override
    {
        for (uint32_t l = 0; l < kWarpSize; ++l)
            if (ev.active & (1u << l))
                mix(ev.addr[l]);
    }

    void
    branch(const BranchEvent &ev) override
    {
        mix(ev.taken);
    }
};

WarpTask
busyKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> x = i;
    w.While([&] { return x > 1u; },
            [&] {
                Pred even = (x & 1u) == w.imm(0u);
                x = w.select(even, x >> 1, x * 3u + 1u);
            });
    w.stg<uint32_t>(out, i, x);
    co_return;
}

TEST(Semantics, EventStreamIsDeterministic)
{
    uint64_t digests[2];
    for (int run = 0; run < 2; ++run) {
        Engine e;
        auto out = e.alloc<uint32_t>(256);
        KernelParams p;
        p.push(out.addr());
        DigestHook hook;
        e.addHook(&hook);
        e.launch("collatz", busyKernel, Dim3(4), Dim3(64), 0, p);
        digests[run] = hook.digest;
    }
    EXPECT_EQ(digests[0], digests[1]);
}

TEST(Semantics, CollatzConverges)
{
    Engine e;
    auto out = e.alloc<uint32_t>(256);
    KernelParams p;
    p.push(out.addr());
    e.launch("collatz", busyKernel, Dim3(4), Dim3(64), 0, p);
    // Lane 0 of warp 0 starts at 0 and never enters the loop.
    EXPECT_EQ(out[0], 0u);
    for (uint32_t i = 1; i < 256; ++i)
        EXPECT_EQ(out[i], 1u) << i;
}

TEST(Semantics, BarrierUnderDivergencePanics)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        Reg<uint32_t> l = w.laneId();
        bool bad = false;
        w.If(l < 16u, [&] { bad = true; });
        // Trying to barrier with half the lanes masked must die.
        if (bad) {
            w.If(l < 16u, [&] { (void)w.barrier(); });
        }
        co_return;
    };
    EXPECT_DEATH(e.launch("badbar", fn, Dim3(1), Dim3(32), 0, p),
                 "divergent control flow");
}

TEST(Semantics, SharedMemoryOutOfBoundsPanics)
{
    Engine e;
    KernelParams p;
    auto fn = [](Warp &w) -> WarpTask {
        Reg<uint32_t> l = w.laneId();
        w.stsE<uint32_t>(0, l + 1000u, l);
        co_return;
    };
    EXPECT_DEATH(e.launch("oob", fn, Dim3(1), Dim3(32), 16, p),
                 "shared memory");
}

TEST(Semantics, PredicateCombinators)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    out.fill(0);
    KernelParams p;
    p.push(out.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t out = w.param<uint64_t>(0);
        Reg<uint32_t> l = w.laneId();
        Pred band = (l >= 8u) && (l < 24u);
        Pred ends = (l < 4u) || (l >= 28u);
        Pred notBand = !band;
        w.If(band, [&] { w.stg<uint32_t>(out, l, w.imm(1u)); });
        w.If(ends, [&] { w.stg<uint32_t>(out, l, w.imm(2u)); });
        w.If(notBand && !ends,
             [&] { w.stg<uint32_t>(out, l, w.imm(3u)); });
        co_return;
    };
    e.launch("preds", fn, Dim3(1), Dim3(32), 0, p);
    for (uint32_t l = 0; l < 32; ++l) {
        uint32_t expect = (l >= 8 && l < 24) ? 1
                          : (l < 4 || l >= 28) ? 2
                                               : 3;
        EXPECT_EQ(out[l], expect) << l;
    }
}

TEST(Semantics, AtomicMaxGlobal)
{
    Engine e;
    auto best = e.alloc<int32_t>(1);
    best.set(0, -1000);
    KernelParams p;
    p.push(best.addr());
    auto fn = [](Warp &w) -> WarpTask {
        uint64_t best = w.param<uint64_t>(0);
        Reg<uint32_t> i = w.globalIdX();
        Reg<int32_t> v =
            w.cast<int32_t>((i * 37u) % 101u);
        Reg<uint64_t> addr = w.gaddr<int32_t>(best, w.imm(0u));
        w.atomicMaxGlobal<int32_t>(addr, v);
        co_return;
    };
    e.launch("amax", fn, Dim3(4), Dim3(64), 0, p);
    EXPECT_EQ(best[0], 100);
}

} // anonymous namespace
} // namespace gwc::simt
