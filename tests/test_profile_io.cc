/**
 * @file
 * Tests for profile persistence and CTA-sampled characterization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "metrics/profile_io.hh"
#include "workloads/suite.hh"

namespace gwc::metrics
{
namespace
{

std::vector<KernelProfile>
someProfiles()
{
    workloads::SuiteOptions opts;
    opts.verify = false;
    auto runs = workloads::runSuite({"BLS", "RD"}, opts);
    return workloads::allProfiles(runs);
}

TEST(ProfileIo, RoundTripPreservesEverything)
{
    auto orig = someProfiles();
    std::stringstream ss;
    writeProfilesCsv(ss, orig);
    auto back = readProfilesCsv(ss);

    ASSERT_EQ(back.size(), orig.size());
    for (size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(back[i].workload, orig[i].workload);
        EXPECT_EQ(back[i].kernel, orig[i].kernel);
        EXPECT_EQ(back[i].grid.x, orig[i].grid.x);
        EXPECT_EQ(back[i].cta.x, orig[i].cta.x);
        EXPECT_EQ(back[i].launches, orig[i].launches);
        EXPECT_EQ(back[i].warpInstrs, orig[i].warpInstrs);
        for (uint32_t c = 0; c < kNumCharacteristics; ++c)
            EXPECT_NEAR(back[i].metrics[c], orig[i].metrics[c],
                        1e-9 + 1e-7 * std::fabs(orig[i].metrics[c]))
                << characteristicName(c);
    }
}

TEST(ProfileIo, FileRoundTrip)
{
    auto orig = someProfiles();
    std::string path = "/tmp/gwc_profiles_test.csv";
    saveProfiles(path, orig);
    auto back = loadProfiles(path);
    EXPECT_EQ(back.size(), orig.size());
    EXPECT_EQ(back[0].label(), orig[0].label());
    std::remove(path.c_str());
}

namespace
{

/** Expect @p fn to throw gwc::Error with @p code and @p substr. */
template <typename Fn>
void
expectError(Fn &&fn, gwc::ErrorCode code, const char *substr)
{
    try {
        fn();
        FAIL() << "expected gwc::Error";
    } catch (const gwc::Error &e) {
        EXPECT_EQ(e.code(), code);
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << e.what();
    }
}

} // anonymous namespace

TEST(ProfileIo, RejectsWrongHeader)
{
    std::stringstream ss;
    ss << "bogus,header\n1,2\n";
    expectError([&] { readProfilesCsv(ss); },
                gwc::ErrorCode::InvalidArgument, "header");
}

TEST(ProfileIo, RejectsRaggedRow)
{
    auto orig = someProfiles();
    std::stringstream ss;
    writeProfilesCsv(ss, orig);
    std::string text = ss.str() + "short,row\n";
    std::stringstream bad(text);
    expectError([&] { readProfilesCsv(bad); },
                gwc::ErrorCode::DataLoss, "cells");
}

TEST(ProfileIo, MissingFileIsFatal)
{
    expectError([] { (void)loadProfiles("/nonexistent/gwc.csv"); },
                gwc::ErrorCode::IoError, "cannot open");
}

TEST(ProfileIo, WritesVersionedHeader)
{
    std::stringstream ss;
    writeProfilesCsv(ss, someProfiles());
    std::string first;
    std::getline(ss, first);
    EXPECT_EQ(first, "# gwc-profile v2");
}

TEST(ProfileIo, ReadsLegacyV1)
{
    // A v1 file is the v2 serialization minus the marker line.
    std::stringstream ss;
    auto orig = someProfiles();
    writeProfilesCsv(ss, orig);
    std::string text = ss.str();
    std::string v1 = text.substr(text.find('\n') + 1);
    std::stringstream legacy(v1);
    auto back = readProfilesCsv(legacy);
    EXPECT_EQ(back.size(), orig.size());
}

TEST(ProfileIo, RejectsFutureVersion)
{
    std::stringstream ss;
    writeProfilesCsv(ss, someProfiles());
    std::string text = ss.str();
    std::string future =
        "# gwc-profile v99\n" + text.substr(text.find('\n') + 1);
    std::stringstream is(future);
    expectError([&] { readProfilesCsv(is); },
                gwc::ErrorCode::InvalidArgument, "newer than");
}

TEST(ProfileIo, TryLoadReturnsStatus)
{
    auto res = tryLoadProfiles("/nonexistent/gwc.csv");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), gwc::ErrorCode::IoError);
}

TEST(Sampling, HomogeneousKernelIsSamplingInvariant)
{
    // BLS runs identical CTAs; CTA-sampled fractions must match the
    // full characterization almost exactly.
    workloads::SuiteOptions fullOpt, samOpt;
    fullOpt.verify = false;
    samOpt.verify = false;
    samOpt.ctaSampleStride = 4;
    auto full = workloads::allProfiles(
        workloads::runSuite({"BLS"}, fullOpt));
    auto sam = workloads::allProfiles(
        workloads::runSuite({"BLS"}, samOpt));

    ASSERT_EQ(full.size(), 1u);
    ASSERT_EQ(sam.size(), 1u);
    // A quarter of the instructions observed.
    EXPECT_NEAR(double(sam[0].warpInstrs),
                double(full[0].warpInstrs) / 4.0,
                double(full[0].warpInstrs) * 0.05);
    // Rate/fraction characteristics survive sampling.
    for (uint32_t c : {uint32_t(kFracFpAlu), uint32_t(kFracSfu),
                       uint32_t(kSimdActivity),
                       uint32_t(kTxPerGmemAccess),
                       uint32_t(kCoalescingEff),
                       uint32_t(kDivBranchFrac)})
        EXPECT_NEAR(sam[0].metrics[c], full[0].metrics[c], 1e-6)
            << characteristicName(c);
}

TEST(PhaseMode, PerLaunchSeparatesBfsLevels)
{
    simt::Engine engine;
    Profiler::Config cfg;
    cfg.perLaunch = true;
    Profiler prof(cfg);
    auto wl = workloads::makeWorkload("BFS");
    wl->setup(engine, 1);
    engine.addHook(&prof);
    wl->run(engine);
    engine.clearHooks();
    auto profiles = prof.finalize("BFS");

    // Several expand launches, each its own profile, suffixed #n.
    uint32_t expands = 0;
    double minAct = 1.0, maxAct = 0.0;
    for (const auto &p : profiles) {
        EXPECT_EQ(p.launches, 1u) << p.kernel;
        if (p.kernel.rfind("expand#", 0) == 0) {
            ++expands;
            minAct = std::min(minAct, p.metrics[kSimdActivity]);
            maxAct = std::max(maxAct, p.metrics[kSimdActivity]);
        }
    }
    EXPECT_GE(expands, 4u);
    // The frontier sweep must show up as a wide activity range,
    // which merged characterization would hide.
    EXPECT_GT(maxAct - minAct, 0.3);
}

TEST(PhaseMode, MergedAndPerLaunchInstrTotalsAgree)
{
    auto run = [](bool perLaunch) {
        simt::Engine engine;
        Profiler::Config cfg;
        cfg.perLaunch = perLaunch;
        Profiler prof(cfg);
        auto wl = workloads::makeWorkload("FWT");
        wl->setup(engine, 1);
        engine.addHook(&prof);
        wl->run(engine);
        engine.clearHooks();
        uint64_t total = 0;
        for (const auto &p : prof.finalize("FWT"))
            total += p.warpInstrs;
        return total;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Sampling, StrideOneMatchesDefault)
{
    workloads::SuiteOptions a, b;
    a.verify = false;
    b.verify = false;
    b.ctaSampleStride = 1;
    auto pa = workloads::allProfiles(workloads::runSuite({"RD"}, a));
    auto pb = workloads::allProfiles(workloads::runSuite({"RD"}, b));
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        for (uint32_t c = 0; c < kNumCharacteristics; ++c)
            EXPECT_DOUBLE_EQ(pa[i].metrics[c], pb[i].metrics[c]);
}

} // anonymous namespace
} // namespace gwc::metrics
