/**
 * @file
 * Edge cases of the timing model and the engine's launch machinery
 * that the main suites don't reach: occupancy limits, more cores
 * than CTAs, hook fan-out, 2D geometry sweeps and memory-allocator
 * alignment.
 */

#include <gtest/gtest.h>

#include "metrics/profiler.hh"
#include "simt/engine.hh"
#include "timing/gpu.hh"

namespace gwc
{
namespace
{

using simt::Dim3;
using simt::Engine;
using simt::KernelParams;
using simt::Reg;
using simt::Warp;
using simt::WarpTask;

WarpTask
tinyKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    w.stg<uint32_t>(out, i, i + 1u);
    co_return;
}

WarpTask
barKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    w.stsE<uint32_t>(0, w.tidLinear(), i);
    co_await w.barrier();
    co_await w.barrier();
    Reg<uint32_t> v = w.ldsE<uint32_t>(0, w.tidLinear());
    w.stg<uint32_t>(out, i, v);
    co_return;
}

std::vector<timing::KernelTrace>
traceOf(const simt::KernelFn &fn, Dim3 grid, Dim3 cta, uint32_t smem)
{
    Engine e;
    auto out = e.alloc<uint32_t>(grid.count() * cta.count());
    KernelParams p;
    p.push(out.addr());
    timing::TraceCapture cap;
    e.addHook(&cap);
    e.launch("k", fn, grid, cta, smem, p);
    return std::move(cap.traces());
}

TEST(TimingEdge, MoreCoresThanCtas)
{
    auto traces = traceOf(tinyKernel, Dim3(2), Dim3(64), 0);
    timing::GpuConfig cfg;
    cfg.numCores = 16; // 14 cores idle
    auto r = timing::simulate(traces[0], cfg);
    EXPECT_EQ(r.instrs, traces[0].totalOps);
    EXPECT_GT(r.cycles, 0u);
}

TEST(TimingEdge, SingleCtaSlotSerializesCtas)
{
    auto traces = traceOf(tinyKernel, Dim3(8), Dim3(128), 0);
    timing::GpuConfig one;
    one.numCores = 1;
    one.maxCtasPerCore = 1;
    timing::GpuConfig four = one;
    four.maxCtasPerCore = 4;
    // More concurrent CTAs hide latency: never slower.
    EXPECT_LE(timing::simulate(traces[0], four).cycles,
              timing::simulate(traces[0], one).cycles);
}

TEST(TimingEdge, BarriersWithOccupancyRotation)
{
    // 6 CTAs through 2 slots with two barriers each: the barrier
    // bookkeeping must survive CTA retirement and admission.
    auto traces = traceOf(barKernel, Dim3(6), Dim3(96), 96 * 4);
    timing::GpuConfig cfg;
    cfg.numCores = 1;
    cfg.maxCtasPerCore = 2;
    auto r = timing::simulate(traces[0], cfg);
    EXPECT_EQ(r.instrs, traces[0].totalOps);
}

TEST(TimingEdge, ZeroLengthWarpTraceHandled)
{
    timing::KernelTrace t;
    t.name = "empty";
    t.warpsPerCta = 1;
    t.numCtas = 1;
    t.warps.resize(1);
    t.warps[0].cta = 0;
    timing::GpuConfig cfg;
    auto r = timing::simulate(t, cfg);
    EXPECT_EQ(r.instrs, 0u);
}

TEST(EngineEdge, HookFanOutReachesAllHooks)
{
    Engine e;
    auto out = e.alloc<uint32_t>(64);
    KernelParams p;
    p.push(out.addr());
    metrics::Profiler p1, p2;
    timing::TraceCapture cap;
    e.addHook(&p1);
    e.addHook(&p2);
    e.addHook(&cap);
    auto st = e.launch("k", tinyKernel, Dim3(1), Dim3(64), 0, p);
    auto a = p1.finalize("A");
    auto b = p2.finalize("B");
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].warpInstrs, b[0].warpInstrs);
    EXPECT_EQ(cap.traces()[0].totalOps, st.warpInstrs);
    for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
        EXPECT_DOUBLE_EQ(a[0].metrics[c], b[0].metrics[c]);
}

struct Grid2D
{
    uint32_t gx, gy, cx, cy;
};

class Grid2DSweep : public ::testing::TestWithParam<Grid2D>
{};

WarpTask
coord2dKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    uint32_t width = w.param<uint32_t>(1);
    Reg<uint32_t> x = w.globalIdX();
    Reg<uint32_t> y = w.globalIdY();
    w.stg<uint32_t>(out, y * width + x, y * 1000u + x);
    co_return;
}

TEST_P(Grid2DSweep, EveryCellWrittenOnce)
{
    auto [gx, gy, cx, cy] = GetParam();
    uint32_t width = gx * cx, height = gy * cy;
    Engine e;
    auto out = e.alloc<uint32_t>(width * height);
    out.fill(0xFFFFFFFF);
    KernelParams p;
    p.push(out.addr()).push(width);
    e.launch("c2d", coord2dKernel, Dim3(gx, gy), Dim3(cx, cy), 0, p);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            ASSERT_EQ(out[y * width + x], y * 1000 + x)
                << x << "," << y;
}

INSTANTIATE_TEST_SUITE_P(
    Engine, Grid2DSweep,
    ::testing::Values(Grid2D{1, 1, 32, 4}, Grid2D{2, 3, 16, 8},
                      Grid2D{4, 2, 32, 8}, Grid2D{3, 5, 8, 4},
                      Grid2D{2, 2, 64, 2}),
    [](const auto &info) {
        const auto &g = info.param;
        return "g" + std::to_string(g.gx) + "x" +
               std::to_string(g.gy) + "c" + std::to_string(g.cx) +
               "x" + std::to_string(g.cy);
    });

TEST(EngineEdge, AllocationAlignment)
{
    simt::GlobalMemory m;
    uint64_t a = m.allocBytes(1);
    uint64_t b = m.allocBytes(7);
    uint64_t c = m.allocBytes(300);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_EQ(c % 256, 0u);
    EXPECT_GT(b, a);
    EXPECT_GT(c, b);
    // The 128B coalescing segments never straddle two buffers.
    EXPECT_NE(a / 128, b / 128);
}

TEST(EngineEdge, TraceCaptureCapTruncatesSafely)
{
    Engine e;
    auto out = e.alloc<uint32_t>(4096);
    KernelParams p;
    p.push(out.addr());
    timing::TraceCapture cap(100); // absurdly small cap
    e.addHook(&cap);
    e.launch("k", tinyKernel, Dim3(16), Dim3(256), 0, p);
    EXPECT_TRUE(cap.truncated());
    EXPECT_EQ(cap.traces()[0].totalOps, 100u);
    // Truncated traces still simulate.
    timing::GpuConfig cfg;
    auto r = timing::simulate(cap.traces()[0], cfg);
    EXPECT_EQ(r.instrs, 100u);
}

} // anonymous namespace
} // namespace gwc
