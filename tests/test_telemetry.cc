/**
 * @file
 * Unit tests for the telemetry subsystem: stats registry semantics,
 * JSON dump well-formedness, trace write -> read identity, sampling
 * and flight-recorder bounding, and HookList delivery order.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "simt/engine.hh"
#include "telemetry/report.hh"
#include "telemetry/stats.hh"
#include "telemetry/trace.hh"

namespace gwc::telemetry
{
namespace
{

// ---------------------------------------------------------------- stats

TEST(Counter, IncrementAndAdd)
{
    Counter c("hits", "cache hits");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.name(), "hits");
    EXPECT_EQ(c.desc(), "cache hits");
}

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(1u << 14), 15u);
    // Open-ended last bucket.
    EXPECT_EQ(Histogram::bucketOf(1u << 15), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketOf(~0ull), Histogram::kBuckets - 1);
}

TEST(Histogram, Moments)
{
    Histogram h("lat", "latency");
    EXPECT_EQ(h.mean(), 0.0);
    h.sample(0);
    h.sample(10);
    h.sample(2);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 12u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.bucket(0), 1u); // the zero
    EXPECT_EQ(h.bucket(2), 1u); // the 2
    EXPECT_EQ(h.bucket(4), 1u); // the 10
}

TEST(Timer, ScopedLaps)
{
    Timer t("phase", "a phase");
    {
        ScopedTimer st(&t);
    }
    {
        ScopedTimer st(&t);
        st.stop();
        st.stop(); // idempotent: still one lap
    }
    EXPECT_EQ(t.laps(), 2u);
    // Null timer scopes are legal no-ops.
    ScopedTimer nothing(nullptr);
    nothing.stop();
}

TEST(Registry, GetOrCreateAccumulates)
{
    Registry reg;
    // Two "instances" registering the same stat share it.
    Counter &a = reg.group("engine").counter("launches", "launches");
    a += 3;
    Counter &b = reg.group("engine").counter("launches", "launches");
    b += 4;
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.counterTotal("engine", "launches"), 7u);
    EXPECT_EQ(reg.counterTotal("engine", "nope"), 0u);
    EXPECT_EQ(reg.counterTotal("nope", "launches"), 0u);
    const Group *g = reg.find("engine");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->findCounter("launches"), &a);
    EXPECT_EQ(reg.find("missing"), nullptr);
}

/**
 * Minimal structural JSON checker: verifies balanced containers and
 * valid string/escape syntax, enough to catch malformed dumps without
 * a JSON library in the image.
 */
bool
jsonWellFormed(const std::string &s)
{
    std::vector<char> stack;
    bool inStr = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inStr) {
            if (c == '\\') {
                if (i + 1 >= s.size())
                    return false;
                ++i;
            } else if (c == '"') {
                inStr = false;
            }
            continue;
        }
        switch (c) {
          case '"': inStr = true; break;
          case '{': case '[': stack.push_back(c); break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return !inStr && stack.empty();
}

TEST(Registry, JsonDump)
{
    Registry reg;
    auto &g = reg.group("eng\"ine"); // name needing escaping
    g.counter("launches", "kernel launches") += 5;
    g.histogram("cta_threads", "threads per CTA").sample(256);
    g.timer("phase", "some phase").addNs(1500);

    std::string js = reg.jsonString();
    EXPECT_TRUE(jsonWellFormed(js)) << js;
    EXPECT_NE(js.find("\"eng\\\"ine\""), std::string::npos);
    EXPECT_NE(js.find("\"launches\""), std::string::npos);
    EXPECT_NE(js.find("\"value\":5"), std::string::npos);
    EXPECT_NE(js.find("\"cta_threads\""), std::string::npos);
    EXPECT_NE(js.find("\"ns\":1500"), std::string::npos);

    std::ostringstream txt;
    reg.dumpText(txt);
    EXPECT_NE(txt.str().find("launches"), std::string::npos);
}

TEST(Report, JsonTotals)
{
    RunReport r;
    r.tool = "test";
    r.wallSec = 2.0;
    r.hookEvents = 100;
    WorkloadReport w;
    w.name = "RD";
    w.verified = true;
    w.simulateSec = 1.0;
    w.warpInstrs = 50;
    KernelReportRow k;
    k.name = "reduce";
    k.launches = 2;
    k.warpInstrs = 50;
    k.geometry = "8.1.1/128.1.1";
    w.kernels.push_back(k);
    r.workloads.push_back(w);

    std::ostringstream os;
    writeRunReport(os, r, nullptr);
    std::string js = os.str();
    EXPECT_TRUE(jsonWellFormed(js)) << js;
    EXPECT_NE(js.find("\"tool\":\"test\""), std::string::npos);
    EXPECT_NE(js.find("\"warp_instrs\":50"), std::string::npos);
    EXPECT_NE(js.find("\"geometry\":\"8.1.1/128.1.1\""),
              std::string::npos);
    // No registry attached -> no stats key.
    EXPECT_EQ(js.find("\"stats\""), std::string::npos);
}

// ------------------------------------------------------------ hook order

/** Appends a tag to a shared log on every instr event. */
class TagHook : public simt::ProfilerHook
{
  public:
    TagHook(char tag, std::string *log) : tag_(tag), log_(log) {}
    void instr(const simt::InstrEvent &) override { *log_ += tag_; }

  private:
    char tag_;
    std::string *log_;
};

simt::WarpTask
tinyKernel(simt::Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    simt::Reg<uint32_t> i = w.globalIdX();
    w.stg<uint32_t>(out, i, i + i);
    co_return;
}

TEST(HookList, RegistrationOrderDelivery)
{
    simt::Engine e;
    auto buf = e.alloc<uint32_t>(32);
    std::string log;
    TagHook a('a', &log), b('b', &log);
    e.addHook(&a);
    e.addHook(&b);
    simt::KernelParams p;
    p.push(buf.addr());
    e.launch("tiny", tinyKernel, simt::Dim3(1), simt::Dim3(32), 0, p);
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.size() % 2, 0u);
    for (size_t i = 0; i < log.size(); i += 2)
        ASSERT_EQ(log.substr(i, 2), "ab") << "at " << i;
}

// ----------------------------------------------------------------- trace

/** Records a normalized text form of every event for comparison. */
class EventLog : public simt::ProfilerHook
{
  public:
    std::vector<std::string> lines;

    void
    kernelBegin(const simt::KernelInfo &info) override
    {
        std::ostringstream os;
        os << "K " << info.name << ' ' << info.grid.x << ','
           << info.grid.y << ',' << info.grid.z << ' ' << info.cta.x
           << ',' << info.cta.y << ',' << info.cta.z << ' '
           << info.sharedBytes;
        lines.push_back(os.str());
    }

    void kernelEnd() override { lines.push_back("k"); }

    void
    ctaBegin(uint32_t c) override
    {
        lines.push_back("C " + std::to_string(c));
    }

    void
    ctaEnd(uint32_t c) override
    {
        lines.push_back("c " + std::to_string(c));
    }

    void
    instr(const simt::InstrEvent &ev) override
    {
        std::ostringstream os;
        os << "I " << int(ev.cls) << ' ' << ev.active << ' '
           << ev.warpId << ' ' << ev.ctaLinear;
        lines.push_back(os.str());
    }

    void
    mem(const simt::MemEvent &ev) override
    {
        std::ostringstream os;
        os << "M " << int(ev.space) << ' ' << ev.store << ev.atomic
           << ' ' << int(ev.accessSize) << ' ' << ev.active << ' '
           << ev.warpId << ' ' << ev.ctaLinear;
        for (uint32_t l = 0; l < simt::kWarpSize; ++l)
            if (ev.active >> l & 1)
                os << ' ' << ev.addr[l];
        lines.push_back(os.str());
    }

    void
    branch(const simt::BranchEvent &ev) override
    {
        std::ostringstream os;
        os << "B " << ev.active << ' ' << ev.taken << ' ' << ev.warpId;
        lines.push_back(os.str());
    }

    void
    barrier(uint32_t warpId) override
    {
        lines.push_back("S " + std::to_string(warpId));
    }
};

simt::WarpTask
barrierKernel(simt::Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    uint32_t n = w.param<uint32_t>(1);
    simt::Reg<uint32_t> i = w.globalIdX();
    simt::Reg<uint32_t> t = w.tidLinear();
    w.If(i < n, [&] { w.stsE<uint32_t>(0, t, i * i); });
    co_await w.barrier();
    w.If(i < n, [&] {
        simt::Reg<uint32_t> v = w.ldsE<uint32_t>(0, t);
        w.stg<uint32_t>(out, i, v);
    });
    co_return;
}

/** Runs barrierKernel with @p hooks attached; returns launch stats. */
simt::LaunchStats
runTraced(const std::vector<simt::ProfilerHook *> &hooks,
          uint32_t ctas = 3)
{
    simt::Engine e;
    const uint32_t n = ctas * 64 - 10;
    auto out = e.alloc<uint32_t>(ctas * 64);
    for (auto *h : hooks)
        e.addHook(h);
    simt::KernelParams p;
    p.push(out.addr()).push(n);
    return e.launch("bk", barrierKernel, simt::Dim3(ctas),
                    simt::Dim3(64), 64 * 4, p);
}

std::string
tmpTracePath(const char *tag)
{
    return testing::TempDir() + "gwc_" + tag + ".trace";
}

TEST(Trace, WriteReadIdentity)
{
    std::string path = tmpTracePath("identity");
    EventLog live;
    {
        TraceWriter w(path);
        runTraced({&live, &w});
        w.close();
        EXPECT_EQ(w.evicted(), 0u);
        EXPECT_EQ(w.recorded().total(), live.lines.size());
    }

    EventLog replayed;
    TraceReader r(path);
    EXPECT_EQ(r.version(), kTraceVersion);
    EXPECT_EQ(r.ctaSampleStride(), 1u);
    uint64_t orphans = 7;
    TraceCounts counts = r.replay(replayed, &orphans);
    EXPECT_EQ(orphans, 0u);
    EXPECT_EQ(counts.total(), live.lines.size());
    EXPECT_EQ(counts.kernelBegins, 1u);
    EXPECT_EQ(counts.ctaBegins, 3u);
    EXPECT_GT(counts.instrs, 0u);
    EXPECT_GT(counts.mems, 0u);
    EXPECT_GT(counts.barriers, 0u);
    ASSERT_EQ(replayed.lines.size(), live.lines.size());
    for (size_t i = 0; i < live.lines.size(); ++i)
        ASSERT_EQ(replayed.lines[i], live.lines[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(Trace, CtaSampling)
{
    std::string path = tmpTracePath("sampled");
    TraceWriter::Config cfg;
    cfg.ctaSampleStride = 2;
    {
        TraceWriter w(path, cfg);
        runTraced({&w}, 5);
        w.close();
    }

    EventLog replayed;
    TraceReader r(path);
    EXPECT_EQ(r.ctaSampleStride(), 2u);
    TraceCounts counts = r.replay(replayed);
    // CTAs 0, 2, 4 recorded; 1 and 3 skipped entirely.
    EXPECT_EQ(counts.ctaBegins, 3u);
    EXPECT_EQ(counts.ctaEnds, 3u);
    for (const auto &l : replayed.lines) {
        EXPECT_NE(l, "C 1");
        EXPECT_NE(l, "C 3");
    }
    // Per-warp events of skipped CTAs are absent too.
    EXPECT_GT(counts.instrs, 0u);
    for (const auto &l : replayed.lines)
        if (l[0] == 'I')
            EXPECT_EQ((l.back() - '0') % 2, 0) << l;
    std::remove(path.c_str());
}

TEST(Trace, FlightRecorderBounds)
{
    std::string path = tmpTracePath("flight");
    TraceWriter::Config cfg;
    cfg.flightRecorder = true;
    cfg.bufferBytes = 4096; // far smaller than the event stream
    uint64_t accepted = 0, evicted = 0;
    {
        TraceWriter w(path, cfg);
        runTraced({&w}, 32);
        w.close();
        EXPECT_GT(w.evicted(), 0u);
        accepted = w.recorded().total();
        evicted = w.evicted();
        EXPECT_GT(accepted, evicted);
    }

    // v3 flight recording evicts whole chunks, so the survivors
    // replay cleanly — no orphaned records — and account for exactly
    // the accepted events minus the evicted ones (the two kernel
    // markers live in the footer and are synthesized on replay).
    EventLog replayed;
    TraceReader r(path);
    uint64_t orphans = 7;
    TraceCounts counts = r.replay(replayed, &orphans);
    EXPECT_EQ(orphans, 0u);
    EXPECT_EQ(counts.total(), accepted - evicted);
    EXPECT_EQ(counts.kernelBegins, 1u);
    // Chunks cut at CTA boundaries: the first surviving event after
    // the synthesized KernelBegin opens a CTA.
    ASSERT_GT(replayed.lines.size(), 1u);
    EXPECT_EQ(replayed.lines[1][0], 'C');
    std::remove(path.c_str());
}

TEST(Trace, StatsAttached)
{
    std::string path = tmpTracePath("stats");
    Registry reg;
    {
        TraceWriter w(path);
        w.attachStats(reg);
        runTraced({&w});
        w.close();
    }
    EXPECT_GT(reg.counterTotal("trace", "records"), 0u);
    EXPECT_GT(reg.counterTotal("trace", "bytes"), 0u);
    EXPECT_GT(reg.counterTotal("trace", "chunks"), 0u);
    EXPECT_EQ(reg.counterTotal("trace", "evicted"), 0u);
    std::remove(path.c_str());
}

TEST(Trace, V2BackCompatRoundTrip)
{
    // The legacy flat-record format stays writable (pinned via
    // Config::format) and readable, with full event identity.
    std::string path = tmpTracePath("v2");
    TraceWriter::Config cfg;
    cfg.format = kTraceVersionV2;
    EventLog live;
    {
        TraceWriter w(path, cfg);
        runTraced({&live, &w});
        w.close();
    }

    EventLog replayed;
    TraceReader r(path);
    EXPECT_EQ(r.version(), kTraceVersionV2);
    EXPECT_FALSE(r.chunked());
    TraceCounts counts = r.replay(replayed);
    EXPECT_EQ(counts.total(), live.lines.size());
    ASSERT_EQ(replayed.lines.size(), live.lines.size());
    for (size_t i = 0; i < live.lines.size(); ++i)
        ASSERT_EQ(replayed.lines[i], live.lines[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(Trace, ChunkIndexMatchesStream)
{
    // The footer index alone reproduces the stream's shape: per-kind
    // counts, CTA-aligned chunk bounds, and ascending file offsets.
    std::string path = tmpTracePath("index");
    TraceWriter::Config cfg;
    cfg.chunkEvents = 32; // force several chunks from a small run
    EventLog live;
    {
        TraceWriter w(path, cfg);
        runTraced({&live, &w}, 6);
        w.close();
        EXPECT_GT(w.chunksWritten(), 1u);
    }

    TraceReader r(path);
    ASSERT_TRUE(r.chunked());
    const TraceIndex &idx = r.index();
    ASSERT_EQ(idx.launches.size(), 1u);
    EXPECT_EQ(idx.launches[0].info.name, "bk");

    EventLog replayed;
    TraceCounts replayCounts = r.replay(replayed);
    TraceCounts fromIndex = idx.counts();
    EXPECT_EQ(fromIndex.ctaBegins, replayCounts.ctaBegins);
    EXPECT_EQ(fromIndex.instrs, replayCounts.instrs);
    EXPECT_EQ(fromIndex.mems, replayCounts.mems);
    EXPECT_EQ(fromIndex.branches, replayCounts.branches);
    EXPECT_EQ(fromIndex.barriers, replayCounts.barriers);
    ASSERT_EQ(replayed.lines.size(), live.lines.size());
    for (size_t i = 0; i < live.lines.size(); ++i)
        ASSERT_EQ(replayed.lines[i], live.lines[i]) << "record " << i;

    uint64_t prevEnd = 16;
    for (const auto &c : idx.chunks) {
        EXPECT_GE(c.offset, prevEnd);
        prevEnd = c.offset + c.payloadBytes;
        EXPECT_LE(c.firstCta, c.lastCta);
        EXPECT_GT(c.ctaBegins, 0u); // every chunk opens a CTA
        EXPECT_EQ(c.ctaBegins, c.ctaEnds);
    }
    // The delta+varint payload beats the flat v2 encoding.
    EXPECT_LT(idx.payloadBytes(), idx.rawV2Bytes());
    EXPECT_LT(r.fileBytes(), idx.rawV2Bytes());
    std::remove(path.c_str());
}

// -------------------------------------------------------- engine stats

TEST(EngineStats, CountsLaunchWork)
{
    Registry reg;
    simt::Engine e;
    e.attachStats(reg);
    auto buf = e.alloc<uint32_t>(64);
    simt::KernelParams p;
    p.push(buf.addr());
    auto st =
        e.launch("tiny", tinyKernel, simt::Dim3(2), simt::Dim3(32), 0, p);

    EXPECT_EQ(reg.counterTotal("engine", "launches"), 1u);
    EXPECT_EQ(reg.counterTotal("engine", "ctas"), st.ctas);
    EXPECT_EQ(reg.counterTotal("engine", "warp_instrs"), st.warpInstrs);
    // No hooks attached: nothing was dispatched.
    EXPECT_EQ(reg.counterTotal("engine", "ev_instr"), 0u);
    EXPECT_EQ(reg.counterTotal("engine", "ev_fanout"), 0u);

    // With one hook, fanout equals dispatched events x 1 — exactly
    // the sum of the per-kind event counters. kernelEnd/ctaEnd have
    // no kind counter and must not leak into fanout.
    EventLog log;
    e.addHook(&log);
    e.launch("tiny", tinyKernel, simt::Dim3(2), simt::Dim3(32), 0, p);
    EXPECT_EQ(reg.counterTotal("engine", "launches"), 2u);
    EXPECT_GT(reg.counterTotal("engine", "ev_instr"), 0u);
    uint64_t counted = reg.counterTotal("engine", "ev_kernel") +
                       reg.counterTotal("engine", "ev_cta") +
                       reg.counterTotal("engine", "ev_instr") +
                       reg.counterTotal("engine", "ev_mem") +
                       reg.counterTotal("engine", "ev_branch") +
                       reg.counterTotal("engine", "ev_barrier");
    EXPECT_EQ(reg.counterTotal("engine", "ev_fanout"), counted);
    // Cross-check against the hook's own line log: every line except
    // the uncounted kernelEnd ('k') and ctaEnd ('c') boundaries is
    // one delivered event.
    uint64_t delivered = 0;
    for (const auto &l : log.lines)
        if (l[0] != 'k' && l[0] != 'c')
            ++delivered;
    EXPECT_EQ(reg.counterTotal("engine", "ev_fanout"), delivered);
}

TEST(EngineStats, FanoutScalesWithHookCount)
{
    // Two registered hooks: every counted event is delivered twice,
    // so fanout is exactly 2x the per-kind counter sum.
    Registry reg;
    simt::Engine e;
    e.attachStats(reg);
    auto buf = e.alloc<uint32_t>(64);
    simt::KernelParams p;
    p.push(buf.addr());
    EventLog a, b;
    e.addHook(&a);
    e.addHook(&b);
    e.launch("tiny", tinyKernel, simt::Dim3(2), simt::Dim3(32), 0, p);
    uint64_t counted = reg.counterTotal("engine", "ev_kernel") +
                       reg.counterTotal("engine", "ev_cta") +
                       reg.counterTotal("engine", "ev_instr") +
                       reg.counterTotal("engine", "ev_mem") +
                       reg.counterTotal("engine", "ev_branch") +
                       reg.counterTotal("engine", "ev_barrier");
    EXPECT_EQ(reg.counterTotal("engine", "ev_fanout"), 2 * counted);
    EXPECT_EQ(a.lines, b.lines);
}

} // anonymous namespace
} // namespace gwc::telemetry
