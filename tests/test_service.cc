/**
 * @file
 * Characterization-service tests: the bounded priority job queue, the
 * gwc_serve protocol (ping/stats/submit, error envelopes, versioning),
 * concurrent-submission byte-identity against the local execution
 * path, warm-cache answers, the drain contract and the
 * multiple-Sessions-per-process regression the daemon depends on.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/flatjson.hh"
#include "common/logging.hh"
#include "runtime/jobspec.hh"
#include "runtime/session.hh"
#include "service/server.hh"

using namespace gwc;
using runtime::JobResult;
using runtime::JobSpec;
using service::Server;
using service::ServerConfig;

namespace
{

std::string
strAt(const FlatJson &doc, const std::string &k)
{
    auto it = doc.strs.find(k);
    return it == doc.strs.end() ? "" : it->second;
}

/** Minimal cheap job: one workload, serial, verified. */
std::string
submitLine(const std::string &id, const std::string &workload,
           const std::string &inject = "", bool keepGoing = true)
{
    JobSpec spec;
    spec.session.tool = "gwc_characterize";
    spec.session.suite.jobs = 1;
    spec.session.suite.keepGoing = keepGoing;
    spec.session.injectSpecs = inject;
    spec.workloads = {workload};
    return "{\"proto\":1,\"type\":\"submit\",\"id\":\"" + id +
           "\",\"job\":" + spec.toJson() + "}";
}

/** Parse a response line and require a result envelope. */
JobResult
expectResult(const std::string &response)
{
    FlatJson doc = parseFlatJson("response", response);
    EXPECT_EQ(strAt(doc, "type"), "result") << response;
    auto result = runtime::parseJobResultFlat(doc, "result");
    EXPECT_TRUE(result.ok()) << result.status().toString();
    return result.ok() ? result.value() : JobResult{};
}

} // anonymous namespace

TEST(JobQueue, OrdersByPriorityThenAdmission)
{
    service::JobQueue q(8);
    auto push = [&](uint32_t prio, const std::string &id) {
        JobSpec spec;
        spec.priority = prio;
        ASSERT_TRUE(q.submit(std::move(spec), id).ok());
    };
    push(0, "low-a");
    push(5, "high");
    push(0, "low-b");
    push(2, "mid");
    EXPECT_EQ(q.depth(), 4u);
    EXPECT_EQ(q.pop()->id, "high");
    EXPECT_EQ(q.pop()->id, "mid");
    EXPECT_EQ(q.pop()->id, "low-a"); // FIFO within a priority
    EXPECT_EQ(q.pop()->id, "low-b");
}

TEST(JobQueue, BoundsAndDrainSemantics)
{
    service::JobQueue q(2);
    ASSERT_TRUE(q.submit(JobSpec{}, "a").ok());
    ASSERT_TRUE(q.submit(JobSpec{}, "b").ok());
    auto full = q.submit(JobSpec{}, "c");
    ASSERT_FALSE(full.ok());
    EXPECT_EQ(full.status().code(), ErrorCode::ResourceExhausted);

    q.close();
    auto draining = q.submit(JobSpec{}, "d");
    ASSERT_FALSE(draining.ok());
    EXPECT_EQ(draining.status().code(), ErrorCode::Unavailable);

    // Queued jobs still drain, then pop() signals worker exit.
    EXPECT_NE(q.pop(), nullptr);
    EXPECT_NE(q.pop(), nullptr);
    EXPECT_EQ(q.pop(), nullptr);
    EXPECT_EQ(q.rejected(), 2u);
}

TEST(Session, TwoConcurrentSessionsInOneProcessAreSafe)
{
    // The daemon runs N Sessions per process: the process-global log
    // run id and timeline slot must be claim/release, not
    // last-writer-wins. Both sessions run concurrently, both must
    // produce clean, complete results.
    const std::string dir =
        testing::TempDir() + "two_sessions";
    std::vector<JobResult> results(2);
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i)
        threads.emplace_back([&, i] {
            JobSpec spec;
            spec.session.tool = "gwc_test";
            spec.session.suite.jobs = 1;
            spec.session.timelineOut = dir + std::to_string(i) +
                                       ".timeline.json";
            spec.workloads = {i == 0 ? "RD" : "BLS"};
            results[i] = runtime::runJobLocally(spec);
        });
    for (auto &t : threads)
        t.join();
    for (const auto &r : results) {
        EXPECT_EQ(r.exitCode, 0) << r.errorMessage;
        ASSERT_EQ(r.rows.size(), 1u);
        EXPECT_EQ(r.rows[0].status, "ok");
        EXPECT_FALSE(r.runId.empty());
    }
    EXPECT_NE(results[0].runId, results[1].runId);

    // Both sessions released the process-global log run id.
    EXPECT_EQ(logRunId(), "");
    EXPECT_TRUE(claimLogRunId("probe"));
    releaseLogRunId("probe");
}

class ServerTest : public testing::Test
{
  protected:
    /** Start a daemon on a unix socket under TempDir. */
    std::unique_ptr<Server>
    makeServer(ServerConfig cfg)
    {
        static int n = 0;
        cfg.unixSocket =
            testing::TempDir() + "gwc" + std::to_string(n++) + ".sock";
        cfg.maxSessionJobs = 1;
        auto server = std::make_unique<Server>(std::move(cfg));
        server->start();
        return server;
    }

    /** Client side: one request/response over the unix socket. */
    std::string
    roundTrip(const std::string &path, const std::string &request)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0)
            << std::strerror(errno);
        std::string line = request + "\n";
        EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
                  ssize_t(line.size()));
        std::string buf;
        char chunk[65536];
        while (buf.find('\n') == std::string::npos) {
            ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
            if (r <= 0)
                break;
            buf.append(chunk, size_t(r));
        }
        ::close(fd);
        return buf.substr(0, buf.find('\n'));
    }
};

TEST_F(ServerTest, PingAndStatsEnvelopes)
{
    auto server = makeServer(ServerConfig{});
    FlatJson pong = parseFlatJson(
        "pong", server->handleLine("{\"proto\":1,\"type\":\"ping\"}"));
    EXPECT_EQ(strAt(pong, "type"), "pong");
    EXPECT_EQ(strAt(pong, "run_id"), server->runId());
    EXPECT_EQ(pong.nums.at("proto"), 1.0);

    FlatJson stats = parseFlatJson(
        "stats",
        server->handleLine("{\"proto\":1,\"type\":\"stats\"}"));
    EXPECT_EQ(strAt(stats, "type"), "stats");
    EXPECT_EQ(stats.nums.at("jobs.completed"), 0.0);
    server->stop();
}

TEST_F(ServerTest, MalformedAndUnknownRequestsAreErrorEnvelopes)
{
    auto server = makeServer(ServerConfig{});
    FlatJson bad =
        parseFlatJson("bad", server->handleLine("{not json"));
    EXPECT_EQ(strAt(bad, "type"), "error");
    EXPECT_EQ(strAt(bad, "error_code"), "data_loss");

    FlatJson unknown = parseFlatJson(
        "unknown",
        server->handleLine("{\"proto\":1,\"type\":\"dance\"}"));
    EXPECT_EQ(strAt(unknown, "type"), "error");
    EXPECT_EQ(strAt(unknown, "error_code"), "invalid_argument");

    FlatJson newer = parseFlatJson(
        "newer",
        server->handleLine("{\"proto\":99,\"type\":\"ping\"}"));
    EXPECT_EQ(strAt(newer, "type"), "error");
    EXPECT_NE(strAt(newer, "error_message").find("newer"),
              std::string::npos);

    FlatJson badJob = parseFlatJson(
        "badjob", server->handleLine(
                      "{\"proto\":1,\"type\":\"submit\",\"id\":\"x\","
                      "\"job\":{\"schema_version\":999}}"));
    EXPECT_EQ(strAt(badJob, "type"), "error");
    EXPECT_EQ(strAt(badJob, "id"), "x");
    EXPECT_EQ(strAt(badJob, "error_code"), "invalid_argument");
    EXPECT_EQ(server->counters().badRequests, 4u);
    server->stop();
}

TEST_F(ServerTest, ServedResponseIsByteIdenticalToLocalRun)
{
    ServerConfig cfg;
    cfg.workers = 2;
    auto server = makeServer(std::move(cfg));

    // The job the server will actually run after sanitization.
    JobSpec local;
    local.session.tool = "gwc_characterize";
    local.session.suite.jobs = 1;
    local.session.suite.verbose = false;
    local.workloads = {"RD"};
    JobResult localResult = runtime::runJobLocally(local);
    ASSERT_EQ(localResult.exitCode, 0);

    JobResult served =
        expectResult(server->handleLine(submitLine("job-1", "RD")));
    EXPECT_EQ(served.id, "job-1");
    EXPECT_EQ(served.exitCode, 0);
    EXPECT_EQ(served.profilesCsv, localResult.profilesCsv);
    ASSERT_EQ(served.rows.size(), 1u);
    EXPECT_EQ(served.rows[0].name, "RD");
    EXPECT_TRUE(served.rows[0].verified);
    server->stop();
}

TEST_F(ServerTest, EightConcurrentSubmissionsAllByteIdentical)
{
    ServerConfig cfg;
    cfg.workers = 2;
    auto server = makeServer(std::move(cfg));
    const std::string socket = server->config().unixSocket;

    // Mixed cheap workloads, 8 concurrent client connections; every
    // response must be byte-identical to every other response for the
    // same workload (determinism is the service's core property).
    const std::vector<std::string> wls = {"RD", "BLS", "SLA", "RD",
                                          "BLS", "SLA", "RD", "BLS"};
    std::vector<std::string> responses(wls.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < wls.size(); ++i)
        clients.emplace_back([&, i] {
            responses[i] = roundTrip(
                socket,
                submitLine("c" + std::to_string(i), wls[i]));
        });
    for (auto &t : clients)
        t.join();

    std::map<std::string, std::string> csvByWorkload;
    for (size_t i = 0; i < wls.size(); ++i) {
        JobResult r = expectResult(responses[i]);
        EXPECT_EQ(r.id, "c" + std::to_string(i));
        EXPECT_EQ(r.exitCode, 0) << r.errorMessage;
        auto [it, inserted] =
            csvByWorkload.emplace(wls[i], r.profilesCsv);
        if (!inserted)
            EXPECT_EQ(r.profilesCsv, it->second)
                << "non-deterministic response for " << wls[i];
    }
    EXPECT_EQ(server->counters().jobsCompleted, wls.size());
    EXPECT_EQ(server->counters().connections, wls.size());
    server->stop();
}

TEST_F(ServerTest, WarmCacheAnswersWithoutResimulating)
{
    ServerConfig cfg;
    cfg.cacheDir = testing::TempDir() + "serve_cache";
    // A fixed path under TempDir survives across test invocations;
    // the cold half of this test needs an actually-cold cache.
    std::filesystem::remove_all(cfg.cacheDir);
    auto server = makeServer(std::move(cfg));

    JobResult cold =
        expectResult(server->handleLine(submitLine("cold", "RD")));
    EXPECT_EQ(cold.exitCode, 0);
    EXPECT_FALSE(cold.rows[0].cached);
    EXPECT_GE(cold.cacheMisses, 1u);

    JobResult warm =
        expectResult(server->handleLine(submitLine("warm", "RD")));
    EXPECT_EQ(warm.exitCode, 0);
    ASSERT_EQ(warm.rows.size(), 1u);
    EXPECT_TRUE(warm.rows[0].cached);
    EXPECT_GE(warm.cacheHits, 1u);
    EXPECT_EQ(warm.profilesCsv, cold.profilesCsv);
    EXPECT_GE(server->counters().cacheHits, 1u);
    server->stop();
}

TEST_F(ServerTest, InjectionMatrixKeepsStructuredErrorContract)
{
    auto server = makeServer(ServerConfig{});

    // keep-going: failed row + exit 2, the partial contract.
    JobResult partial = expectResult(server->handleLine(
        submitLine("inj", "BLS", "alloc-fail@BLS")));
    EXPECT_EQ(partial.exitCode, 2);
    ASSERT_EQ(partial.rows.size(), 1u);
    EXPECT_EQ(partial.rows[0].status, "failed");
    EXPECT_EQ(partial.rows[0].errorCode, "resource_exhausted");
    EXPECT_FALSE(partial.rows[0].errorMessage.empty());

    // fail-fast: job-level fatal, exit 1, structured code + message.
    JobResult fatal = expectResult(server->handleLine(submitLine(
        "ff", "BLS", "alloc-fail@BLS", /*keepGoing=*/false)));
    EXPECT_EQ(fatal.exitCode, 1);
    EXPECT_FALSE(fatal.errorCode.empty());
    EXPECT_FALSE(fatal.errorMessage.empty());
    EXPECT_TRUE(fatal.rows.empty());
    EXPECT_EQ(server->counters().jobsFailed, 2u);
    server->stop();
}

TEST_F(ServerTest, WireJobsAreSanitized)
{
    auto server = makeServer(ServerConfig{});
    JobSpec sneaky;
    sneaky.session.suite.jobs = 64;
    sneaky.session.statsOut = testing::TempDir() + "sneaky.json";
    sneaky.session.cacheDir = testing::TempDir() + "sneaky_cache";
    sneaky.workloads = {"RD"};
    JobResult r = expectResult(server->handleLine(
        "{\"proto\":1,\"type\":\"submit\",\"id\":\"s\",\"job\":" +
        sneaky.toJson() + "}"));
    EXPECT_EQ(r.exitCode, 0);
    // The client-chosen output path and cache dir were stripped.
    EXPECT_NE(::access((testing::TempDir() + "sneaky.json").c_str(),
                       F_OK),
              0);
    EXPECT_NE(::access((testing::TempDir() + "sneaky_cache").c_str(),
                       F_OK),
              0);
    server->stop();
}

TEST_F(ServerTest, DrainStopsAcceptingAndFinishesQueuedJobs)
{
    ServerConfig cfg;
    cfg.workers = 1;
    auto server = makeServer(std::move(cfg));

    // Submissions in flight when the drain starts still complete.
    std::vector<std::string> responses(3);
    std::vector<std::thread> clients;
    for (int i = 0; i < 3; ++i)
        clients.emplace_back([&, i] {
            responses[i] = server->handleLine(
                submitLine("d" + std::to_string(i), "RD"));
        });
    for (auto &t : clients)
        t.join();
    for (const auto &resp : responses)
        EXPECT_EQ(expectResult(resp).exitCode, 0);

    server->stop(/*drain=*/true);
    // The listener is gone and the socket file was removed.
    EXPECT_NE(::access(server->config().unixSocket.c_str(), F_OK), 0);
    // stop() is idempotent.
    server->stop();
}

TEST_F(ServerTest, TcpListenerServesEphemeralPort)
{
    ServerConfig cfg;
    cfg.port = 0;
    cfg.unixSocket.clear();
    cfg.maxSessionJobs = 1;
    auto server = std::make_unique<Server>(std::move(cfg));
    try {
        server->start();
    } catch (const Error &e) {
        GTEST_SKIP() << "TCP bind unavailable here: " << e.what();
    }
    ASSERT_GT(server->tcpPort(), 0);
    FlatJson pong = parseFlatJson(
        "pong", server->handleLine("{\"proto\":1,\"type\":\"ping\"}"));
    EXPECT_EQ(strAt(pong, "type"), "pong");
    server->stop();
}
