/**
 * @file
 * Tests of the shared CLI layer: the declarative option table, alias
 * resolution, typed-value validation, unknown-flag suggestions, the
 * help/version text and the cli::run exit-code adapter.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hh"

namespace gwc
{
namespace
{

/** parse() over a brace-list of arguments (argv[0] supplied). */
std::vector<std::string>
parseArgs(cli::Parser &p, std::vector<std::string> args)
{
    args.insert(args.begin(), "tool");
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    return p.parse(int(argv.size()), argv.data());
}

/** Expect @p fn to throw gwc::Error with @p code and a message
 * containing @p substr. */
template <typename Fn>
void
expectError(Fn &&fn, ErrorCode code, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected gwc::Error(" << errorCodeName(code) << ")";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << e.what();
    }
}

TEST(Cli, ParsesFlagsAliasesAndPositionals)
{
    uint32_t scale = 1;
    bool verify = true;
    std::string out = "profiles.csv";
    cli::Parser p("t", "[options] [workload ...]");
    p.uintOpt("--scale", "-s", "N", "scale", &scale, 1);
    p.flag("--no-verify", "", "skip checks", &verify, false);
    p.strOpt("--output", "-o", "FILE", "csv", &out);

    auto pos = parseArgs(p, {"-s", "3", "--no-verify", "-o", "x.csv",
                             "BLS", "MUM"});
    EXPECT_EQ(scale, 3u);
    EXPECT_FALSE(verify);
    EXPECT_EQ(out, "x.csv");
    EXPECT_EQ(pos, (std::vector<std::string>{"BLS", "MUM"}));
    EXPECT_FALSE(p.helpRequested());
    EXPECT_FALSE(p.versionRequested());
}

TEST(Cli, LongNameAndAliasHitTheSameDestination)
{
    uint32_t jobs = 0;
    cli::Parser p("t", "");
    p.uintOpt("--jobs", "-j", "N", "jobs", &jobs, 1);
    parseArgs(p, {"--jobs", "4"});
    EXPECT_EQ(jobs, 4u);
    parseArgs(p, {"-j", "7"});
    EXPECT_EQ(jobs, 7u);
}

TEST(Cli, AppendOptAccumulatesCommaSeparated)
{
    std::string specs;
    cli::Parser p("t", "");
    p.appendOpt("--inject", "", "SPEC", "fault", &specs);
    parseArgs(p, {"--inject", "oom@BLS", "--inject",
                  "timeout@MUM:2"});
    EXPECT_EQ(specs, "oom@BLS,timeout@MUM:2");
}

TEST(Cli, MibOptStoresBytes)
{
    uint64_t bytes = 0;
    cli::Parser p("t", "");
    p.mibOpt("--mem-budget", "", "MIB", "budget", &bytes);
    parseArgs(p, {"--mem-budget", "3"});
    EXPECT_EQ(bytes, 3ull << 20);
}

TEST(Cli, RejectsBadValues)
{
    uint32_t jobs = 1;
    double frac = 0.5;
    cli::Parser p("t", "");
    p.uintOpt("--jobs", "-j", "N", "jobs", &jobs, 1);
    p.realOpt("--coverage", "-c", "FRAC", "frac", &frac, 0.0);

    expectError([&] { parseArgs(p, {"--jobs", "zero"}); },
                ErrorCode::InvalidArgument, "unsigned integer");
    expectError([&] { parseArgs(p, {"--jobs", "0"}); },
                ErrorCode::InvalidArgument, "--jobs must be >= 1");
    expectError([&] { parseArgs(p, {"--jobs"}); },
                ErrorCode::InvalidArgument, "requires a value");
    expectError([&] { parseArgs(p, {"--coverage", "x"}); },
                ErrorCode::InvalidArgument, "expects a number");
    expectError([&] { parseArgs(p, {"--coverage", "-1"}); },
                ErrorCode::InvalidArgument, "must be >= 0");
}

TEST(Cli, UnknownOptionSuggestsNearMiss)
{
    uint32_t jobs = 1;
    cli::Parser p("t", "");
    p.uintOpt("--jobs", "-j", "N", "jobs", &jobs, 1);
    expectError([&] { parseArgs(p, {"--jbos", "2"}); },
                ErrorCode::InvalidArgument, "--jobs");
    expectError([&] { parseArgs(p, {"--frobnicate"}); },
                ErrorCode::InvalidArgument, "unknown option");
}

TEST(Cli, SuggestClosestRanksExactAboveFuzzy)
{
    auto sug = cli::suggestClosest(
        "MUN", {"BLS", "MUM", "NW", "MRIQ"});
    ASSERT_FALSE(sug.empty());
    EXPECT_EQ(sug[0], "MUM");
    EXPECT_TRUE(cli::suggestClosest("zzz", {"BLS", "NW"}).empty());
}

TEST(Cli, EditDistanceBasics)
{
    EXPECT_EQ(cli::editDistance("", "abc"), 3u);
    EXPECT_EQ(cli::editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(cli::editDistance("same", "same"), 0u);
}

TEST(Cli, HelpAndVersionAreReportedNotExited)
{
    cli::Parser p("t", "");
    parseArgs(p, {"--help"});
    EXPECT_TRUE(p.helpRequested());

    cli::Parser q("t", "");
    parseArgs(q, {"--version"});
    EXPECT_TRUE(q.versionRequested());
    EXPECT_EQ(q.versionText(),
              std::string("t (gwc) ") + cli::versionString() + "\n");
}

/** Golden help text: layout changes here must be deliberate. */
TEST(Cli, HelpTextGolden)
{
    uint32_t scale = 1;
    bool list = false;
    cli::Parser p("gwc_demo", "[options] [workload ...]");
    p.uintOpt("--scale", "-s", "N", "input-size scale (default 1)",
              &scale, 1);
    p.flag("--list", "", "list registered workloads and exit", &list);
    EXPECT_EQ(p.helpText(),
              "usage: gwc_demo [options] [workload ...]\n"
              "  --scale N, -s N    input-size scale (default 1)\n"
              "  --list             list registered workloads and exit\n"
              "  --log-level LEVEL  minimum log severity: debug, info, warn,\n"
              "                     error (default info)\n"
              "  --log-json         structured JSONL log lines\n"
              "  -h, --help         show this help and exit\n"
              "  --version          print the version and exit\n");
}

TEST(Cli, DashAloneIsPositional)
{
    cli::Parser p("t", "");
    auto pos = parseArgs(p, {"-"});
    EXPECT_EQ(pos, std::vector<std::string>{"-"});
}

TEST(Cli, RunMapsErrorsToExitCodes)
{
    EXPECT_EQ(cli::run([] { return 0; }), 0);
    EXPECT_EQ(cli::run([] { return 2; }), 2);
    EXPECT_EQ(cli::run([]() -> int {
                  raise(ErrorCode::IoError, "nope");
              }),
              1);
    EXPECT_EQ(cli::run([]() -> int {
                  throw std::runtime_error("surprise");
              }),
              1);
}

} // anonymous namespace
} // namespace gwc
