/**
 * @file
 * A mini-suite of GKS kernels shared by the executor-identity tests.
 *
 * Every kernel takes the same signature — `ptr out, ptr in, u32 n` —
 * so one harness can drive all of them over the batch x jobs matrix.
 * Together they cover every opcode family and every control shape the
 * bytecode compiler handles specially: fusable straight-line runs
 * (ld+ld, mul+add, alu+st, ld+alu+st), divergent if/else and while
 * (including zero-trip and all-lanes-taken), nested control, top-level
 * barriers with shared memory, atomics, SFU/cvt chains, scalar-param
 * broadcasts, and the defined div/rem/shift edge semantics.
 *
 * Stores are guarded by `n` (the harness sizes `out`/`in` to the padded
 * thread count, but identical guards keep the branch-event streams
 * interesting at every batch size). The global atomic adds 0 so its
 * observed old values stay deterministic under jobs > 1.
 */

#ifndef GWC_TESTS_GKS_KERNELS_HH
#define GWC_TESTS_GKS_KERNELS_HH

#include <cstdint>

namespace gwc::simt
{

struct GksTestKernel
{
    const char *tag;    ///< short name for diagnostics
    const char *source; ///< GKS text, .kernel header included
};

/** Shared-memory bytes every suite kernel is launched with. */
constexpr uint32_t kGksSuiteShared = 64 * 4;

/** CTA width every suite kernel is launched with. */
constexpr uint32_t kGksSuiteCta = 64;

inline constexpr GksTestKernel kGksIdentitySuite[] = {
    {"vecadd", R"(
        .kernel vecadd
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        if.lt.u32 %i, $n
          ld.u32 %x, $in[%i]
          ld.u32 %y, $out[%i]
          add.u32 %z, %x, %y
          st.u32 $out[%i], %z
        endif
    )"},
    {"affine", R"(
        .kernel affine
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        mul.u32 %j, %i, 1
        add.u32 %j, %j, 0
        if.lt.u32 %j, $n
          ld.u32 %x, $in[%j]
          mul.u32 %x, %x, 3
          st.u32 $out[%j], %x
        endif
    )"},
    {"collatz", R"(
        .kernel collatz
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        rem.u32 %x, %i, 19
        add.u32 %x, %x, 1
        while.gt.u32 %x, 1
          rem.u32 %r, %x, 2
          if.eq.u32 %r, 0
            shr.u32 %x, %x, 1
          else
            mul.u32 %t, %x, 3
            add.u32 %t, %t, 1
            mov.u32 %x, %t
          endif
        endwhile
        if.lt.u32 %i, $n
          st.u32 $out[%i], %x
        endif
    )"},
    {"twophase", R"(
        .kernel twophase
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        tid %t
        add.u32 %v, %t, 7
        sts.u32 sm[%t], %v
        bar
        xor.u32 %m, %t, 1
        lds.u32 %r, sm[%m]
        bar
        if.lt.u32 %i, $n
          st.u32 $out[%i], %r
        endif
    )"},
    {"atoms", R"(
        .kernel atoms
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        lane %l
        ctaid %c
        tid %t
        rem.u32 %b, %i, 8
        atom.add.u32 %old, $out[%b], 0
        atoms.add.u32 %o2, sm[%l], %b
        add.u32 %s, %old, %o2
        add.u32 %s, %s, %c
        add.u32 %s, %s, %t
        if.lt.u32 %i, $n
          st.u32 $out[%i], %s
        endif
    )"},
    {"mathy", R"(
        .kernel mathy
        .param ptr out
        .param ptr in
        .param u32 n
        gid %g
        rem.u32 %i, %g, 97
        cvt.f32.u32 %x, %i
        add.f32 %x, %x, 1.5
        sqrt.f32 %s, %x
        rsqrt.f32 %q, %x
        fma.f32 %f, %s, 2.0, %x
        sin.f32 %sn, %s
        cos.f32 %cs, %s
        add.f32 %u, %sn, %cs
        mul.f32 %u, %u, %f
        neg.f32 %nf, %q
        add.f32 %u, %u, %nf
        div.f32 %u, %u, 3.0
        if.lt.u32 %g, $n
          ld.f32 %v, $in[%g]
          add.f32 %u, %u, %v
          min.f32 %u, %u, 1000.0
          max.f32 %u, %u, 0.0
          cvt.s32.f32 %si, %u
          abs.s32 %ai, %si
          cvt.u32.s32 %uo, %ai
          st.u32 $out[%g], %uo
        endif
    )"},
    {"bits", R"(
        .kernel bits
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        and.u32 %a, %i, 0xff
        or.u32 %o, %a, 0x100
        xor.u32 %x, %o, %i
        shl.u32 %s, %x, 3
        shr.u32 %r, %s, 2
        div.u32 %d, %r, 5
        rem.u32 %m, %r, 5
        cvt.s32.u32 %si, %i
        sub.s32 %si, %si, 40
        div.s32 %ds, %si, 7
        rem.s32 %ms, %si, 7
        min.u32 %mu, %d, %m
        max.s32 %mx, %ds, %ms
        min.s32 %mn, %ds, %ms
        add.u32 %sum, %mu, $n
        sub.u32 %sum, %sum, %mx
        add.u32 %sum, %sum, %mn
        shl.u32 %z, 1, %i
        add.u32 %sum, %sum, %z
        div.u32 %zz, 100, %m
        rem.u32 %zr, 100, %m
        add.u32 %sum, %sum, %zz
        add.u32 %sum, %sum, %zr
        if.lt.u32 %i, $n
          st.u32 $out[%i], %sum
        endif
    )"},
    {"control", R"(
        .kernel control
        .param ptr out
        .param ptr in
        .param u32 n
        gid %i
        mov.u32 %c, 0
        while.gt.u32 %c, 5
          add.u32 %c, %c, 1
        endwhile
        if.eq.u32 %i, 123456789
          add.u32 %c, %c, 9
        endif
        if.lt.u32 %i, 0x7fffffff
          add.u32 %c, %c, 3
        endif
        rem.u32 %p, %i, 2
        if.eq.u32 %p, 0
          add.u32 %c, %c, 1
        else
          add.u32 %c, %c, 2
        endif
        rem.u32 %w, %i, 5
        while.gt.u32 %w, 0
          sub.u32 %w, %w, 1
          add.u32 %c, %c, %w
        endwhile
        if.lt.u32 %i, $n
          st.u32 $out[%i], %c
        endif
    )"},
};

} // namespace gwc::simt

#endif // GWC_TESTS_GKS_KERNELS_HH
