/**
 * @file
 * Tests of the second observability layer: the execution timeline
 * (Chrome trace JSON, per-thread span nesting, CTA-block coverage),
 * per-PC hotspot attribution (totals vs the characterization
 * profiler, shard-merge identity), thread-pool introspection, and
 * trace-corruption diagnostics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <latch>
#include <sstream>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "metrics/hotspots.hh"
#include "metrics/profiler.hh"
#include "runtime/status.hh"
#include "simt/engine.hh"
#include "telemetry/poolstats.hh"
#include "telemetry/stats.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace.hh"
#include "workloads/suite.hh"

namespace gwc
{
namespace
{

// ---------------------------------------------------------------------
// Shared kernels
// ---------------------------------------------------------------------

simt::WarpTask
saxpyKernel(simt::Warp &w)
{
    using namespace simt;
    uint64_t x = w.param<uint64_t>(0);
    uint64_t y = w.param<uint64_t>(1);
    uint32_t n = w.param<uint32_t>(2);

    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<float> a = w.ldg<float>(x, i);
        Reg<float> b = w.ldg<float>(y, i);
        w.stg<float>(y, i, a * 2.0f + b);
    });
    co_return;
}

/** Divergence + shared memory + barrier + global stores. */
simt::WarpTask
barrierKernel(simt::Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    uint32_t n = w.param<uint32_t>(1);
    simt::Reg<uint32_t> i = w.globalIdX();
    simt::Reg<uint32_t> t = w.tidLinear();
    w.If(i < n, [&] { w.stsE<uint32_t>(0, t, i * i); });
    co_await w.barrier();
    w.If(i < n, [&] {
        simt::Reg<uint32_t> v = w.ldsE<uint32_t>(0, t);
        w.stg<uint32_t>(out, i, v);
    });
    co_return;
}

/** Launch saxpy on a fresh engine at @p jobs with @p hooks. */
void
runSaxpy(unsigned jobs, const std::vector<simt::ProfilerHook *> &hooks,
         uint32_t ctas = 16)
{
    simt::Engine e;
    e.setJobs(jobs);
    const uint32_t n = ctas * 256;
    auto x = e.alloc<float>(n);
    auto y = e.alloc<float>(n);
    for (uint32_t i = 0; i < n; ++i) {
        x.set(i, float(i));
        y.set(i, 1.0f);
    }
    for (auto *h : hooks)
        e.addHook(h);
    simt::KernelParams p;
    p.push(x.addr()).push(y.addr()).push(n);
    e.launch("saxpy", saxpyKernel, simt::Dim3(ctas), simt::Dim3(256),
             0, p);
    e.clearHooks();
}

/** Structural JSON check: balanced containers, valid strings. */
bool
jsonWellFormed(const std::string &s)
{
    std::vector<char> stack;
    bool inStr = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inStr) {
            if (c == '\\') {
                if (i + 1 >= s.size())
                    return false;
                ++i;
            } else if (c == '"') {
                inStr = false;
            }
            continue;
        }
        switch (c) {
          case '"': inStr = true; break;
          case '{': case '[': stack.push_back(c); break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return !inStr && stack.empty();
}

// ---------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------

TEST(Timeline, InactiveScopesAreNoOps)
{
    ASSERT_EQ(telemetry::Timeline::active(), nullptr);
    {
        telemetry::TimelineScope s("cat", "never recorded");
        s.arg("k", "v");
    }
    telemetry::Timeline tl;
    EXPECT_TRUE(tl.threadLogs().empty());
}

TEST(Timeline, RecordsNestedSpans)
{
    telemetry::Timeline tl;
    tl.activate();
    {
        telemetry::TimelineScope outer("phase", "outer");
        telemetry::TimelineScope inner("phase", "inner");
        inner.arg("key", "value");
    }
    tl.deactivate();
    ASSERT_EQ(telemetry::Timeline::active(), nullptr);

    auto logs = tl.threadLogs();
    ASSERT_EQ(logs.size(), 1u);
    ASSERT_EQ(logs[0].spans.size(), 2u);
    // Completion order: inner closes first.
    const auto &inner = logs[0].spans[0];
    const auto &outer = logs[0].spans[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_GE(inner.beginNs, outer.beginNs);
    EXPECT_LE(inner.endNs, outer.endNs);
    ASSERT_EQ(inner.args.size(), 1u);
    EXPECT_EQ(inner.args[0].first, "key");
    EXPECT_EQ(inner.args[0].second, "value");
}

TEST(Timeline, SecondTimelineTakesOver)
{
    telemetry::Timeline a;
    a.activate();
    {
        telemetry::TimelineScope s("t", "in-a");
    }
    telemetry::Timeline b;
    b.activate();
    {
        telemetry::TimelineScope s("t", "in-b");
    }
    b.deactivate();
    a.deactivate(); // no longer active; must not clobber
    ASSERT_EQ(telemetry::Timeline::active(), nullptr);
    ASSERT_EQ(a.threadLogs().size(), 1u);
    EXPECT_EQ(a.threadLogs()[0].spans.size(), 1u);
    ASSERT_EQ(b.threadLogs().size(), 1u);
    EXPECT_EQ(b.threadLogs()[0].spans.size(), 1u);
    EXPECT_EQ(b.threadLogs()[0].spans[0].name, "in-b");
}

TEST(Timeline, SuiteRunProducesValidChromeTrace)
{
    telemetry::Timeline tl;
    tl.activate();
    workloads::SuiteOptions opts;
    opts.jobs = 4;
    auto runs = workloads::runSuite({"MM"}, opts);
    tl.deactivate();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_TRUE(runs[0].verified);

    std::ostringstream os;
    tl.writeChromeTrace(os);
    std::string js = os.str();
    EXPECT_TRUE(jsonWellFormed(js)) << js.substr(0, 400);
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    // Metadata names threads; spans exist for the workload, its
    // phases, and CTA blocks.
    EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(js.find("\"workload\""), std::string::npos);
    EXPECT_NE(js.find("\"phase\""), std::string::npos);
    EXPECT_NE(js.find("\"cta_block\""), std::string::npos);
    EXPECT_NE(js.find("MM simulate"), std::string::npos);

    // Per-thread spans nest: no two spans of one thread partially
    // overlap (they are either disjoint or contained).
    for (const auto &log : tl.threadLogs()) {
        const auto &sp = log.spans;
        for (size_t i = 0; i < sp.size(); ++i)
            for (size_t j = i + 1; j < sp.size(); ++j) {
                const auto &a = sp[i];
                const auto &b = sp[j];
                bool partial =
                    (a.beginNs < b.beginNs && b.beginNs < a.endNs &&
                     a.endNs < b.endNs) ||
                    (b.beginNs < a.beginNs && a.beginNs < b.endNs &&
                     b.endNs < a.endNs);
                EXPECT_FALSE(partial)
                    << log.threadName << ": " << a.name << " vs "
                    << b.name;
            }
    }
}

TEST(Timeline, WorkerSpansCoverAllCtaBlocks)
{
    const uint32_t ctas = 16;
    telemetry::Timeline tl;
    tl.activate();
    runSaxpy(4, {}, ctas);
    tl.deactivate();

    // Every CTA appears in exactly one cta_block span, across all
    // recording threads (pool workers + participating caller).
    std::vector<uint32_t> covered(ctas, 0);
    for (const auto &log : tl.threadLogs()) {
        for (const auto &sp : log.spans) {
            if (std::string(sp.cat) != "cta_block")
                continue;
            uint32_t first = 0, last = 0;
            bool haveFirst = false, haveLast = false;
            for (const auto &[k, v] : sp.args) {
                if (k == "first_cta") {
                    first = uint32_t(std::stoul(v));
                    haveFirst = true;
                } else if (k == "last_cta") {
                    last = uint32_t(std::stoul(v));
                    haveLast = true;
                }
            }
            ASSERT_TRUE(haveFirst && haveLast) << sp.name;
            ASSERT_LE(last, ctas);
            for (uint32_t c = first; c < last; ++c)
                ++covered[c];
        }
    }
    for (uint32_t c = 0; c < ctas; ++c)
        EXPECT_EQ(covered[c], 1u) << "cta " << c;
}

// ---------------------------------------------------------------------
// Hotspot attribution
// ---------------------------------------------------------------------

TEST(Hotspots, TotalsMatchProfilerCounters)
{
    simt::Engine e;
    const uint32_t ctas = 3, n = ctas * 64 - 10;
    auto out = e.alloc<uint32_t>(ctas * 64);
    metrics::Profiler prof;
    metrics::HotspotProfiler hot;
    e.addHook(&prof);
    e.addHook(&hot);
    simt::KernelParams p;
    p.push(out.addr()).push(n);
    auto st = e.launch("bk", barrierKernel, simt::Dim3(ctas),
                       simt::Dim3(64), 64 * 4, p);
    e.clearHooks();

    auto profiles = prof.finalize("T");
    auto tables = hot.finalize("T");
    ASSERT_EQ(profiles.size(), 1u);
    ASSERT_EQ(tables.size(), 1u);
    metrics::PcCounts tot = tables[0].total();

    // Dynamic warp instructions agree with both the engine and the
    // profiler.
    EXPECT_EQ(tot.instrs, st.warpInstrs);
    EXPECT_EQ(tot.instrs, profiles[0].warpInstrs);

    // Ratio metrics reproduce exactly from the hotspot totals: both
    // collectors saw the same event stream and use the same helpers.
    const auto &m = profiles[0].metrics;
    ASSERT_GT(tot.branches, 0u);
    EXPECT_EQ(double(tot.divBranches) / double(tot.branches),
              m[metrics::kDivBranchFrac]);
    ASSERT_GT(tot.gmemAccesses, 0u);
    EXPECT_EQ(double(tot.gmemTransactions) / double(tot.gmemAccesses),
              m[metrics::kTxPerGmemAccess]);
    ASSERT_GT(tot.smemAccesses, 0u);
    EXPECT_EQ(double(tot.smemConflictDegree) /
                  double(tot.smemAccesses),
              m[metrics::kBankConflictDeg]);
}

/** Render the saxpy hotspot table at the given engine jobs. */
std::string
saxpyHotspots(unsigned jobs)
{
    metrics::HotspotProfiler hot;
    runSaxpy(jobs, {&hot});
    auto tables = hot.finalize("SAXPY");
    EXPECT_EQ(tables.size(), 1u);
    std::ostringstream os;
    for (const auto &ks : tables)
        metrics::renderHotspots(os, ks, 0);
    return os.str();
}

TEST(Hotspots, ShardMergeIdenticalToSerial)
{
    std::string serial = saxpyHotspots(1);
    std::string parallel = saxpyHotspots(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel)
        << "hotspot tables must not depend on jobs";
}

TEST(Hotspots, RendersListingColumn)
{
    metrics::KernelHotspots ks;
    ks.workload = "W";
    ks.kernel = "k";
    ks.launches = 1;
    ks.pcs[0].instrs = 10;
    ks.pcs[1].instrs = 90;
    ks.pcs[1].divBranches = 2;
    std::vector<std::string> listing{"add r0, r1", "ld.global r2"};
    std::ostringstream os;
    metrics::renderHotspots(os, ks, 1, &listing);
    std::string s = os.str();
    // Top-1: only the hottest PC (1) shows, with its source text.
    EXPECT_NE(s.find("ld.global r2"), std::string::npos);
    EXPECT_EQ(s.find("add r0, r1"), std::string::npos);
    EXPECT_NE(s.find("W.k"), std::string::npos);
    EXPECT_NE(s.find("100"), std::string::npos); // total instrs
}

// ---------------------------------------------------------------------
// ThreadPool introspection
// ---------------------------------------------------------------------

TEST(PoolStats, SnapshotAccountsForEveryTask)
{
    ThreadPool pool(2);
    const size_t n = 64;
    std::atomic<uint64_t> ran{0};
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < n; ++i)
        tasks.push_back([&ran] { ++ran; });
    pool.runAll(std::move(tasks), 3);
    ASSERT_EQ(ran.load(), n);

    ThreadPool::Stats s = pool.statsSnapshot();
    ASSERT_EQ(s.workers.size(), 2u);
    EXPECT_EQ(s.groups, 1u);
    EXPECT_GT(s.tickets, 0u);
    uint64_t total = s.callerTasks;
    for (const auto &w : s.workers)
        total += w.tasks;
    EXPECT_EQ(total, n) << "every task attributed exactly once";
}

TEST(PoolStats, RegistryAdapterPublishesGroup)
{
    ThreadPool pool(2);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < 32; ++i)
        tasks.push_back([] {});
    pool.runAll(std::move(tasks), 3);

    telemetry::Registry reg;
    telemetry::recordThreadPoolStats(reg, pool.statsSnapshot());
    EXPECT_EQ(reg.counterTotal("threadpool", "workers"), 2u);
    EXPECT_EQ(reg.counterTotal("threadpool", "groups"), 1u);
    EXPECT_EQ(reg.counterTotal("threadpool", "tasks") +
                  reg.counterTotal("threadpool", "caller_tasks"),
              32u);
    // Per-worker counters exist for both workers.
    const telemetry::Group *g = reg.find("threadpool");
    ASSERT_NE(g, nullptr);
    EXPECT_NE(g->findCounter("w0_tasks"), nullptr);
    EXPECT_NE(g->findCounter("w1_tasks"), nullptr);
    EXPECT_EQ(g->findCounter("w2_tasks"), nullptr);
}

TEST(PoolStats, CurrentWorkerIdDistinguishesThreads)
{
    EXPECT_EQ(ThreadPool::currentWorkerId(), -1);
    ThreadPool pool(2);
    // Both tasks rendezvous, so they must be in flight at once: the
    // caller can hold at most one, hence at least one runs on a pool
    // worker — no timing assumptions.
    std::latch rendezvous(2);
    std::atomic<int> sawWorker{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 2; ++i)
        tasks.push_back([&] {
            int id = ThreadPool::currentWorkerId();
            EXPECT_GE(id, -1);
            EXPECT_LT(id, 2);
            if (id >= 0)
                ++sawWorker;
            rendezvous.arrive_and_wait();
        });
    pool.runAll(std::move(tasks), 3);
    EXPECT_GT(sawWorker.load(), 0);
}

// ---------------------------------------------------------------------
// Trace corruption diagnostics (gwc_trace exit behaviour)
// ---------------------------------------------------------------------

std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "gwc_obs_" + tag + ".trace";
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             std::streamsize(bytes.size()));
}

std::vector<uint8_t>
traceHeader(uint32_t version, uint32_t stride)
{
    std::vector<uint8_t> b(telemetry::kTraceMagic,
                           telemetry::kTraceMagic + 8);
    for (int i = 0; i < 4; ++i)
        b.push_back(uint8_t(version >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        b.push_back(uint8_t(stride >> (8 * i)));
    return b;
}

/** Append a minimal KernelBegin record for a 1x1x1 kernel "k". */
void
appendKernelBegin(std::vector<uint8_t> &b)
{
    b.push_back(0); // TraceTag::KernelBegin
    b.push_back(1); // nameLen lo
    b.push_back(0); // nameLen hi
    b.push_back('k');
    for (int word = 0; word < 7; ++word) { // grid, cta, sharedBytes
        uint32_t v = word < 6 ? 1u : 0u;
        for (int i = 0; i < 4; ++i)
            b.push_back(uint8_t(v >> (8 * i)));
    }
}

/** Runs @p fn, returning the Error message it raises ("" if none). */
std::string
errorMessage(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const Error &e) {
        return e.what();
    }
    return {};
}

TEST(TraceDiagnostics, TruncatedHeaderRaisesDataLoss)
{
    std::string path = tmpPath("hdr");
    writeBytes(path, std::vector<uint8_t>(telemetry::kTraceMagic,
                                          telemetry::kTraceMagic + 8));
    std::string msg =
        errorMessage([&] { telemetry::TraceReader r(path); });
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceDiagnostics, NewerVersionRejected)
{
    std::string path = tmpPath("ver");
    writeBytes(path, traceHeader(telemetry::kTraceVersion + 7, 1));
    std::string msg =
        errorMessage([&] { telemetry::TraceReader r(path); });
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    EXPECT_NE(msg.find("newer"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceDiagnostics, ZeroStrideRaisesDataLoss)
{
    std::string path = tmpPath("stride");
    writeBytes(path, traceHeader(telemetry::kTraceVersion, 0));
    std::string msg =
        errorMessage([&] { telemetry::TraceReader r(path); });
    EXPECT_NE(msg.find("stride 0"), std::string::npos) << msg;
    std::remove(path.c_str());
}

// The flat-record decode diagnostics below craft v2 streams: v2 stays
// readable forever, and its per-record checks must keep firing.

TEST(TraceDiagnostics, CorruptOpClassRaisesDataLoss)
{
    std::string path = tmpPath("cls");
    auto b = traceHeader(telemetry::kTraceVersionV2, 1);
    appendKernelBegin(b);
    b.push_back(4);   // TraceTag::Instr
    b.push_back(250); // invalid OpClass
    for (int i = 0; i < 16; ++i)
        b.push_back(0); // active, warpId, ctaLinear, pc
    writeBytes(path, b);
    telemetry::TraceReader r(path);
    simt::ProfilerHook sink;
    std::string msg = errorMessage([&] { r.replay(sink); });
    EXPECT_NE(msg.find("op class"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceDiagnostics, CorruptMemFlagsRaisesDataLoss)
{
    std::string path = tmpPath("flags");
    auto b = traceHeader(telemetry::kTraceVersionV2, 1);
    appendKernelBegin(b);
    b.push_back(5);    // TraceTag::Mem
    b.push_back(0xF0); // reserved flag bits set
    writeBytes(path, b);
    telemetry::TraceReader r(path);
    simt::ProfilerHook sink;
    std::string msg = errorMessage([&] { r.replay(sink); });
    EXPECT_NE(msg.find("mem flags"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceDiagnostics, TruncatedRecordRaisesDataLoss)
{
    std::string path = tmpPath("cut");
    auto b = traceHeader(telemetry::kTraceVersionV2, 1);
    appendKernelBegin(b);
    b.push_back(4); // TraceTag::Instr, then EOF mid-payload
    b.push_back(0); // valid OpClass, missing everything after
    writeBytes(path, b);
    telemetry::TraceReader r(path);
    simt::ProfilerHook sink;
    std::string msg = errorMessage([&] { r.replay(sink); });
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    std::remove(path.c_str());
}

/**
 * v3 corruption diagnostics name the chunk and the intra-chunk
 * offset, so a damaged corpus points at the byte range to re-record.
 */
TEST(TraceDiagnostics, CorruptChunkNamesChunkAndOffset)
{
    std::string path = tmpPath("chunk");
    simt::KernelInfo info;
    info.name = "k";
    info.grid = simt::Dim3(1);
    info.cta = simt::Dim3(32);
    {
        telemetry::TraceWriter w(path);
        w.kernelBegin(info);
        w.ctaBegin(0);
        w.barrier(0);
        w.ctaEnd(0);
        w.kernelEnd();
        w.close();
    }

    uint64_t offset = 0, payloadBytes = 0;
    {
        telemetry::TraceReader r(path);
        ASSERT_TRUE(r.chunked());
        ASSERT_EQ(r.index().chunks.size(), 1u);
        offset = r.index().chunks[0].offset;
        payloadBytes = r.index().chunks[0].payloadBytes;
    }
    // Tiny chunk: the three varint header fields are one byte each,
    // so the payload (and its first record tag) starts at offset 4.
    ASSERT_LT(payloadBytes, 128u);
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(std::streamoff(offset + 4));
        f.put(char(0xFF)); // clobber the first record tag
    }

    telemetry::TraceReader r(path);
    simt::ProfilerHook sink;
    std::string msg =
        errorMessage([&] { r.decodeChunk(0, sink); });
    EXPECT_NE(msg.find("unknown record tag"), std::string::npos) << msg;
    EXPECT_NE(msg.find("chunk 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("intra-chunk offset 0"), std::string::npos)
        << msg;
    std::remove(path.c_str());
}

/** A clobbered chunk marker is caught against the index. */
TEST(TraceDiagnostics, CorruptChunkMarkerRaisesDataLoss)
{
    std::string path = tmpPath("marker");
    simt::KernelInfo info;
    info.name = "k";
    info.grid = simt::Dim3(1);
    info.cta = simt::Dim3(32);
    {
        telemetry::TraceWriter w(path);
        w.kernelBegin(info);
        w.ctaBegin(0);
        w.barrier(0);
        w.ctaEnd(0);
        w.kernelEnd();
        w.close();
    }
    uint64_t offset = 0;
    {
        telemetry::TraceReader r(path);
        ASSERT_EQ(r.index().chunks.size(), 1u);
        offset = r.index().chunks[0].offset;
    }
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(std::streamoff(offset));
        f.put(char(0x00));
    }
    telemetry::TraceReader r(path);
    simt::ProfilerHook sink;
    std::string msg = errorMessage([&] { r.decodeChunk(0, sink); });
    EXPECT_NE(msg.find("chunk 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("disagrees with the index"), std::string::npos)
        << msg;
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace gwc
