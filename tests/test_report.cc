/**
 * @file
 * Unit tests for the ASCII figure rendering.
 */

#include <gtest/gtest.h>

#include "report/plot.hh"

namespace gwc::report
{
namespace
{

TEST(Scatter, RendersPointsAndLegend)
{
    AsciiScatter sc("title", "PC1", "PC2");
    sc.add(0.0, 0.0, "origin");
    sc.add(1.0, 1.0, "corner");
    std::string out = sc.render(40, 10);
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("origin"), std::string::npos);
    EXPECT_NE(out.find("corner"), std::string::npos);
    EXPECT_NE(out.find("PC1"), std::string::npos);
    // Marker characters a and b must appear in the grid area.
    EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(Scatter, HandlesDegenerateRanges)
{
    AsciiScatter sc("all same", "x", "y");
    for (int i = 0; i < 3; ++i)
        sc.add(1.0, 2.0, "p" + std::to_string(i));
    std::string out = sc.render(20, 5);
    EXPECT_FALSE(out.empty());
    AsciiScatter empty("none", "x", "y");
    EXPECT_NE(empty.render().find("no points"), std::string::npos);
}

TEST(Scatter, CsvFormat)
{
    AsciiScatter sc("t", "x", "y");
    sc.add(0.5, -1.5, "k");
    std::string csv = sc.csv();
    EXPECT_EQ(csv.rfind("label,x,y\n", 0), 0u);
    EXPECT_NE(csv.find("k,0.5"), std::string::npos);
}

TEST(Bars, RenderScalesToMax)
{
    AsciiBars bars("scree");
    bars.add("PC1", 10.0);
    bars.add("PC2", 5.0);
    std::string out = bars.render(20);
    // PC1 bar (20 #) must be longer than PC2 bar (10 #).
    EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
    EXPECT_NE(out.find(std::string(10, '#') + " 5"),
              std::string::npos);
}

TEST(Bars, CsvAndEmpty)
{
    AsciiBars bars("x");
    EXPECT_NE(bars.render().find("no bars"), std::string::npos);
    bars.add("a", 1.25);
    EXPECT_NE(bars.csv().find("a,1.25"), std::string::npos);
}

} // anonymous namespace
} // namespace gwc::report
