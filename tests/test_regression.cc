/**
 * @file
 * Regression pins: the characterization of the bundled workloads is
 * deterministic, so drifting values indicate an unintended change to
 * the engine, a workload or a metric definition. Values are pinned
 * with generous but meaningful tolerances (most characteristics are
 * exact; the pins would catch e.g. a changed coalescing rule or an
 * extra instruction in a kernel).
 */

#include <gtest/gtest.h>

#include "workloads/suite.hh"

namespace gwc::workloads
{
namespace
{

using metrics::KernelProfile;

const std::vector<metrics::KernelProfile> &
suiteProfiles()
{
    static const std::vector<KernelProfile> profiles = [] {
        SuiteOptions opts;
        opts.verify = false;
        return allProfiles(runSuite({}, opts));
    }();
    return profiles;
}

const KernelProfile &
find(const std::string &label)
{
    for (const auto &p : suiteProfiles())
        if (p.label() == label)
            return p;
    ADD_FAILURE() << "no profile " << label;
    static KernelProfile dummy;
    return dummy;
}

struct Pin
{
    const char *label;
    metrics::Characteristic what;
    double value;
    double tol;
};

class GoldenPins : public ::testing::TestWithParam<Pin>
{};

TEST_P(GoldenPins, CharacteristicIsStable)
{
    const Pin &pin = GetParam();
    const auto &p = find(pin.label);
    EXPECT_NEAR(p.metrics[pin.what], pin.value, pin.tol)
        << pin.label << " "
        << metrics::characteristicName(pin.what);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, GoldenPins,
    ::testing::Values(
        // Exact structural properties.
        Pin{"BLS.pricing", metrics::kCoalescingEff, 1.000, 1e-6},
        Pin{"BLS.pricing", metrics::kDivBranchFrac, 0.0, 1e-9},
        Pin{"MM.matmul", metrics::kTxPerGmemAccess, 2.00, 1e-6},
        Pin{"MM.matmul", metrics::kInterCtaSharedFrac, 1.0, 1e-9},
        Pin{"CP.potential", metrics::kSimdActivity, 1.0, 1e-9},
        Pin{"KM.assign", metrics::kCoalescingEff, 1.0, 1e-6},
        Pin{"HSORT.bucketCount", metrics::kTxPerGmemAccess, 1.0,
            1e-6},
        // Behavioural fingerprints (tolerant pins).
        Pin{"BLS.pricing", metrics::kFracFpAlu, 0.737, 0.05},
        Pin{"BLS.pricing", metrics::kFracSfu, 0.066, 0.02},
        Pin{"RD.reduce", metrics::kBarriersPerKiloInstr, 146.3, 15.0},
        Pin{"SLA.scanBlocks", metrics::kBarriersPerKiloInstr, 82.0,
            10.0},
        Pin{"SPMV.spmv", metrics::kDivBranchFrac, 0.312, 0.05},
        Pin{"SPMV.spmv", metrics::kSimdActivity, 0.270, 0.05},
        Pin{"BFS.expand", metrics::kSimdActivity, 0.234, 0.05},
        Pin{"NW.diagonal", metrics::kTxPerGmemAccess, 25.8, 2.0},
        Pin{"MUM.match", metrics::kTxPerGmemAccess, 15.4, 2.0},
        Pin{"MUM.match", metrics::kDivBranchFrac, 0.234, 0.05},
        Pin{"SS.score", metrics::kDivBranchFrac, 0.270, 0.05},
        Pin{"KM.swap", metrics::kTxPerGmemAccess, 8.50, 1.0},
        Pin{"HIST.hist", metrics::kBankConflictDeg, 2.65, 0.4},
        Pin{"MC.pricePaths", metrics::kIlp16, 2.38, 0.4},
        Pin{"CP.potential", metrics::kIlp16, 15.47, 1.5},
        Pin{"STC.jacobi7", metrics::kReuseShortFrac, 0.599, 0.08},
        Pin{"LBM.collideStream", metrics::kFracFpAlu, 0.606, 0.05},
        Pin{"SC.pgain", metrics::kFracAtomic, 0.0105, 0.01}),
    [](const auto &info) {
        std::string n = std::string(info.param.label) + "_" +
                        metrics::characteristicName(info.param.what);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Determinism, FullSuiteCharacterizationIsBitStable)
{
    SuiteOptions opts;
    opts.verify = false;
    auto a = allProfiles(runSuite({"RD", "MUM", "HSORT"}, opts));
    auto b = allProfiles(runSuite({"RD", "MUM", "HSORT"}, opts));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label(), b[i].label());
        EXPECT_EQ(a[i].warpInstrs, b[i].warpInstrs);
        for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
            EXPECT_DOUBLE_EQ(a[i].metrics[c], b[i].metrics[c])
                << a[i].label() << " "
                << metrics::characteristicName(c);
    }
}

TEST(Determinism, SuiteKernelCountPinned)
{
    // Adding/removing kernels must be a conscious decision: every
    // figure in EXPERIMENTS.md quotes these counts.
    EXPECT_EQ(workloadNames().size(), 28u);
    EXPECT_EQ(suiteProfiles().size(), 40u);
}

} // anonymous namespace
} // namespace gwc::workloads
