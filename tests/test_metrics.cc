/**
 * @file
 * Unit tests for the characterization metrics: reuse-distance
 * analyzer, ILP model, and the end-to-end profiler on kernels with
 * known, hand-computable characteristics.
 */

#include <gtest/gtest.h>

#include "metrics/profiler.hh"
#include "simt/engine.hh"

namespace gwc::metrics
{
namespace
{

using simt::Dim3;
using simt::Engine;
using simt::KernelParams;
using simt::Reg;
using simt::Warp;
using simt::WarpTask;

// ---------------------------------------------------------------
// ReuseDistanceAnalyzer
// ---------------------------------------------------------------

TEST(Reuse, ColdMissesOnly)
{
    ReuseDistanceAnalyzer r;
    for (uint64_t i = 0; i < 100; ++i)
        r.access(i);
    EXPECT_EQ(r.total(), 100u);
    EXPECT_EQ(r.coldMisses(), 100u);
    EXPECT_EQ(r.shortReuses(), 0u);
}

TEST(Reuse, ImmediateReuseIsDistanceZero)
{
    ReuseDistanceAnalyzer r;
    r.access(7);
    r.access(7);
    EXPECT_EQ(r.coldMisses(), 1u);
    EXPECT_EQ(r.shortReuses(), 1u);
    EXPECT_EQ(r.mediumReuses(), 1u);
}

TEST(Reuse, KnownStackDistance)
{
    // Access A, then 40 distinct lines, then A again: distance 40,
    // which is > 32 (short) but <= 1024 (medium).
    ReuseDistanceAnalyzer r;
    r.access(1000);
    for (uint64_t i = 0; i < 40; ++i)
        r.access(i);
    r.access(1000);
    EXPECT_EQ(r.shortReuses(), 0u);
    EXPECT_EQ(r.mediumReuses(), 1u);
}

TEST(Reuse, RepeatedLineDoesNotInflateDistance)
{
    // A, B, B, B, A: only one distinct line between the As.
    ReuseDistanceAnalyzer r;
    r.access(1);
    r.access(2);
    r.access(2);
    r.access(2);
    r.access(1);
    // Distance of final A = 1 (just line 2) -> short.
    EXPECT_EQ(r.shortReuses(), 3u); // two B reuses + final A
}

TEST(Reuse, CyclicSweepDistanceEqualsWorkingSet)
{
    // Sweep N lines cyclically twice; every reuse has distance N-1.
    auto sweep = [](uint64_t n) {
        ReuseDistanceAnalyzer r;
        for (int pass = 0; pass < 2; ++pass)
            for (uint64_t i = 0; i < n; ++i)
                r.access(i);
        return r;
    };
    auto small = sweep(20);
    EXPECT_EQ(small.shortReuses(), 20u); // 19 < 32
    auto medium = sweep(100);
    EXPECT_EQ(medium.shortReuses(), 0u);
    EXPECT_EQ(medium.mediumReuses(), 100u);
    auto large = sweep(2000);
    EXPECT_EQ(large.mediumReuses(), 0u);
}

TEST(Reuse, CapStopsAccounting)
{
    ReuseDistanceAnalyzer r(10);
    for (uint64_t i = 0; i < 100; ++i)
        r.access(i % 5);
    EXPECT_EQ(r.total(), 10u);
}

// ---------------------------------------------------------------
// IlpTracker
// ---------------------------------------------------------------

TEST(Ilp, IndependentStreamSaturatesWindow)
{
    IlpTracker t;
    for (int i = 0; i < 1000; ++i)
        t.record(0); // no dependences
    // All instructions independent: issue limited only by the
    // window; ILP approaches the window size.
    EXPECT_NEAR(t.ilp(0), 8.0, 0.1);
    EXPECT_NEAR(t.ilp(3), 64.0, 4.5);
}

TEST(Ilp, SerialChainHasIlpOne)
{
    IlpTracker t;
    t.record(0);
    for (int i = 0; i < 999; ++i)
        t.record(1); // each depends on the previous
    for (size_t w = 0; w < kIlpWindows.size(); ++w)
        EXPECT_NEAR(t.ilp(w), 1.0, 0.01) << w;
}

TEST(Ilp, TwoInterleavedChainsHaveIlpTwo)
{
    IlpTracker t;
    t.record(0);
    t.record(0);
    for (int i = 0; i < 998; ++i)
        t.record(2); // depends on the instruction two back
    EXPECT_NEAR(t.ilp(1), 2.0, 0.05);
    EXPECT_NEAR(t.ilp(3), 2.0, 0.05);
}

TEST(Ilp, WindowLimitsFarParallelism)
{
    // Dependence distance 16: chains of parallelism 16, but a window
    // of 8 can only exploit 8.
    IlpTracker t;
    for (int i = 0; i < 16; ++i)
        t.record(0);
    for (int i = 0; i < 984; ++i)
        t.record(16);
    EXPECT_NEAR(t.ilp(0), 8.0, 0.5);   // window 8
    EXPECT_NEAR(t.ilp(2), 16.0, 1.0);  // window 32
}

TEST(Ilp, EmptyTrackerIsSafe)
{
    IlpTracker t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.ilp(0), 0.0);
}

// ---------------------------------------------------------------
// Profiler end-to-end
// ---------------------------------------------------------------

/** Run @p fn and return the single kernel profile it produces. */
template <typename Fn>
KernelProfile
profileKernel(Fn fn, Dim3 grid, Dim3 cta, uint32_t smem,
              KernelParams p, Engine &e)
{
    Profiler prof;
    e.addHook(&prof);
    e.launch("k", fn, grid, cta, smem, p);
    e.clearHooks();
    auto out = prof.finalize("T");
    EXPECT_EQ(out.size(), 1u);
    return out.front();
}

WarpTask
streamKernel(Warp &w)
{
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, i);
    w.stg<float>(out, i, x * 2.0f);
    co_return;
}

TEST(Profiler, CoalescedStreamKernel)
{
    Engine e;
    const uint32_t n = 4096;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    in.fill(1.0f);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto prof =
        profileKernel(streamKernel, Dim3(n / 256), Dim3(256), 0, p, e);

    const MetricVector &m = prof.metrics;
    // Unit-stride full-warp float accesses: perfect coalescing.
    EXPECT_NEAR(m[kTxPerGmemAccess], 1.0, 1e-9);
    EXPECT_NEAR(m[kCoalescingEff], 1.0, 1e-9);
    EXPECT_NEAR(m[kStrideUnitFrac], 1.0, 1e-9);
    EXPECT_EQ(m[kStrideUniformFrac], 0.0);
    // No divergence, full activity.
    EXPECT_EQ(m[kDivBranchFrac], 0.0);
    EXPECT_NEAR(m[kSimdActivity], 1.0, 1e-9);
    // Geometry.
    EXPECT_DOUBLE_EQ(m[kLog2Threads], 12.0);
    EXPECT_DOUBLE_EQ(m[kThreadsPerCta], 256.0);
    // Streaming: no reuse at all.
    EXPECT_EQ(m[kReuseShortFrac], 0.0);
    // Footprint = 2 * 4096 * 4 bytes = 2^15.
    EXPECT_DOUBLE_EQ(m[kLog2Footprint], 15.0);
    // No inter-CTA sharing and no barriers.
    EXPECT_EQ(m[kInterCtaSharedFrac], 0.0);
    EXPECT_EQ(m[kBarriersPerKiloInstr], 0.0);
}

WarpTask
stridedKernel(Warp &w)
{
    // Column-major style access: lane l touches element l*32, so
    // every lane lands in its own 128B segment.
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, i * 32u);
    w.stg<float>(out, i, x);
    co_return;
}

TEST(Profiler, FullyUncoalescedKernel)
{
    Engine e;
    const uint32_t n = 1024;
    auto in = e.alloc<float>(n * 32);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto prof =
        profileKernel(stridedKernel, Dim3(n / 128), Dim3(128), 0, p, e);

    const MetricVector &m = prof.metrics;
    // Loads need 32 transactions; stores 1. Average 16.5.
    EXPECT_NEAR(m[kTxPerGmemAccess], 16.5, 1e-6);
    EXPECT_LT(m[kCoalescingEff], 0.1);
    EXPECT_GT(m[kStrideIrregFrac], 0.45);
}

WarpTask
broadcastLoadKernel(Warp &w)
{
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, w.imm(0u)); // all lanes same addr
    w.stg<float>(out, i, x);
    co_return;
}

TEST(Profiler, BroadcastLoadIsUniformStride)
{
    Engine e;
    auto in = e.alloc<float>(64);
    auto out = e.alloc<float>(64);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto prof =
        profileKernel(broadcastLoadKernel, Dim3(2), Dim3(32), 0, p, e);
    // Half the accesses (the loads) have stride-0 pairs.
    EXPECT_NEAR(prof.metrics[kStrideUniformFrac], 0.5, 1e-9);
    // Load = 1 transaction, store = 1 transaction.
    EXPECT_NEAR(prof.metrics[kTxPerGmemAccess], 1.0, 1e-9);
}

WarpTask
divergentWorkKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> acc = w.imm(0u);
    // Lane-dependent trip count: heavy divergence.
    Reg<uint32_t> cnt = i % 32u;
    w.While([&] { return cnt > 0u; },
            [&] {
                acc = acc + cnt;
                cnt = cnt - 1u;
            });
    w.stg<uint32_t>(out, i, acc);
    co_return;
}

TEST(Profiler, DivergentKernelHasLowActivity)
{
    Engine e;
    const uint32_t n = 512;
    auto out = e.alloc<uint32_t>(n);
    KernelParams p;
    p.push(out.addr());
    auto prof = profileKernel(divergentWorkKernel, Dim3(n / 64),
                              Dim3(64), 0, p, e);
    const MetricVector &m = prof.metrics;
    EXPECT_GT(m[kDivBranchFrac], 0.5);
    EXPECT_LT(m[kSimdActivity], 0.7);
    EXPECT_GT(m[kDivPerKiloInstr], 100.0);
}

WarpTask
conflictKernel(Warp &w)
{
    // Lane l accesses shared word l*32: all lanes hit bank 0 ->
    // 32-way conflict on every shared access.
    Reg<uint32_t> lane = w.laneId();
    Reg<uint32_t> off = lane * 128u; // *32 words * 4 bytes
    w.stShared<uint32_t>(off, lane);
    Reg<uint32_t> x = w.ldShared<uint32_t>(off);
    w.stg<uint32_t>(w.param<uint64_t>(0), lane, x);
    co_return;
}

TEST(Profiler, BankConflictDegree)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    auto prof = profileKernel(conflictKernel, Dim3(1), Dim3(32),
                              32 * 128 + 4, p, e);
    EXPECT_NEAR(prof.metrics[kBankConflictDeg], 32.0, 1e-9);
    // Round-trip value check while we're here.
    for (uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(out[l], l);
}

WarpTask
conflictFreeKernel(Warp &w)
{
    Reg<uint32_t> lane = w.laneId();
    w.stsE<uint32_t>(0, lane, lane);
    Reg<uint32_t> x = w.ldsE<uint32_t>(0, lane);
    w.stg<uint32_t>(w.param<uint64_t>(0), lane, x);
    co_return;
}

TEST(Profiler, ConflictFreeSharedAccess)
{
    Engine e;
    auto out = e.alloc<uint32_t>(32);
    KernelParams p;
    p.push(out.addr());
    auto prof = profileKernel(conflictFreeKernel, Dim3(1), Dim3(32),
                              32 * 4, p, e);
    EXPECT_NEAR(prof.metrics[kBankConflictDeg], 1.0, 1e-9);
}

TEST(SmemConflictDegree, EmptyActiveMaskIsZero)
{
    // A fully predicated-off shared access serializes into zero
    // passes; degree 1 would wrongly claim a conflict-free pass
    // happened and skew the per-access average.
    simt::MemEvent ev{};
    ev.space = simt::MemSpace::Shared;
    ev.accessSize = 4;
    ev.active = 0;
    EXPECT_EQ(smemConflictDegree(ev), 0u);
}

TEST(SmemConflictDegree, SingleLaneIsOnePass)
{
    simt::MemEvent ev{};
    ev.space = simt::MemSpace::Shared;
    ev.accessSize = 4;
    for (uint32_t l = 0; l < simt::kWarpSize; ++l) {
        ev.active = 1u << l;
        ev.addr[l] = 128; // all lanes hitting one word: still 1 pass
        EXPECT_EQ(smemConflictDegree(ev), 1u);
    }
}

WarpTask
sharedReadersKernel(Warp &w)
{
    // Every CTA reads the same table: 100% inter-CTA sharing on the
    // table lines.
    uint64_t table = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> t = w.tidLinear();
    Reg<float> x = w.ldg<float>(table, t);
    w.stg<float>(out, i, x);
    co_return;
}

TEST(Profiler, InterCtaSharingDetected)
{
    Engine e;
    auto table = e.alloc<float>(64);
    auto out = e.alloc<float>(256);
    KernelParams p;
    p.push(table.addr()).push(out.addr());
    auto prof = profileKernel(sharedReadersKernel, Dim3(4), Dim3(64),
                              0, p, e);
    // Table lines (2) are shared by 4 CTAs; output lines (8) are
    // private. 2 / 10 = 0.2.
    EXPECT_NEAR(prof.metrics[kInterCtaSharedFrac], 0.2, 1e-9);
}

WarpTask
dependentChainKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> a = w.cast<float>(i);
    for (int k = 0; k < 200; ++k)
        a = a * 1.000001f + 0.5f; // two-op serial chain per step
    w.stg<float>(out, i, a);
    co_return;
}

WarpTask
independentOpsKernel(Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> a = w.cast<float>(i);
    Reg<float> s = w.imm(0.0f);
    for (int k = 0; k < 100; ++k) {
        // Each product depends only on loop-invariant 'a'.
        Reg<float> t = a * float(k + 1);
        s = s + t;
    }
    w.stg<float>(out, i, s);
    co_return;
}

TEST(Profiler, IlpSeparatesSerialFromParallel)
{
    Engine e1, e2;
    auto o1 = e1.alloc<float>(64);
    auto o2 = e2.alloc<float>(64);
    KernelParams p1, p2;
    p1.push(o1.addr());
    p2.push(o2.addr());
    auto serial = profileKernel(dependentChainKernel, Dim3(2),
                                Dim3(32), 0, p1, e1);
    auto parallel = profileKernel(independentOpsKernel, Dim3(2),
                                  Dim3(32), 0, p2, e2);
    EXPECT_LT(serial.metrics[kIlp32], 1.5);
    EXPECT_GT(parallel.metrics[kIlp32],
              serial.metrics[kIlp32] * 1.3);
}

WarpTask
barrierKernel(Warp &w)
{
    for (int k = 0; k < 10; ++k)
        co_await w.barrier();
    w.stg<uint32_t>(w.param<uint64_t>(0), w.tidLinear(), w.imm(1u));
    co_return;
}

TEST(Profiler, BarrierIntensity)
{
    Engine e;
    auto out = e.alloc<uint32_t>(64);
    KernelParams p;
    p.push(out.addr());
    auto prof =
        profileKernel(barrierKernel, Dim3(1), Dim3(64), 0, p, e);
    EXPECT_GT(prof.metrics[kBarriersPerKiloInstr], 100.0);
    EXPECT_GT(prof.metrics[kFracSync], 0.1);
}

TEST(Profiler, RepeatedLaunchesMergeIntoOneProfile)
{
    Engine e;
    const uint32_t n = 256;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());

    Profiler prof;
    e.addHook(&prof);
    for (int k = 0; k < 3; ++k)
        e.launch("iter", streamKernel, Dim3(2), Dim3(128), 0, p);
    auto res = prof.finalize("W");
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].launches, 3u);
    EXPECT_EQ(res[0].label(), "W.iter");
    // Threads accumulate over launches: 3 * 256 = 768 -> log2 ~ 9.58.
    EXPECT_NEAR(res[0].metrics[kLog2Threads], std::log2(768.0), 1e-9);
}

TEST(Profiler, DistinctKernelsKeepOrder)
{
    Engine e;
    auto out = e.alloc<float>(64);
    auto in = e.alloc<float>(64);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    Profiler prof;
    e.addHook(&prof);
    e.launch("first", streamKernel, Dim3(1), Dim3(64), 0, p);
    e.launch("second", streamKernel, Dim3(1), Dim3(64), 0, p);
    auto res = prof.finalize("W");
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].kernel, "first");
    EXPECT_EQ(res[1].kernel, "second");
}

TEST(Profiler, MixFractionsSumBelowOne)
{
    Engine e;
    const uint32_t n = 1024;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto prof =
        profileKernel(streamKernel, Dim3(4), Dim3(256), 0, p, e);
    const MetricVector &m = prof.metrics;
    double sum = m[kFracIntAlu] + m[kFracFpAlu] + m[kFracSfu] +
                 m[kFracGmemLd] + m[kFracGmemSt] + m[kFracSmem] +
                 m[kFracAtomic] + m[kFracBranch] + m[kFracSync];
    EXPECT_GT(sum, 0.5);
    EXPECT_LE(sum, 1.0 + 1e-9);
    // Loads are 2/3 of global accesses here.
    EXPECT_NEAR(m[kFracGmemLd] / (m[kFracGmemLd] + m[kFracGmemSt]),
                0.5, 1e-9);
}

TEST(Characteristics, TableIsConsistent)
{
    const auto &tab = characteristicTable();
    for (uint32_t i = 0; i < kNumCharacteristics; ++i) {
        EXPECT_EQ(uint32_t(tab[i].id), i) << "table order broken";
        EXPECT_NE(tab[i].name, nullptr);
    }
    // Every characteristic belongs to exactly one subspace and every
    // subspace is non-empty.
    size_t total = 0;
    for (uint8_t s = 0; s < uint8_t(Subspace::NumSubspaces); ++s) {
        auto idx = subspaceIndices(Subspace(s));
        EXPECT_FALSE(idx.empty()) << subspaceName(Subspace(s));
        total += idx.size();
    }
    EXPECT_EQ(total, size_t(kNumCharacteristics));
}

} // anonymous namespace
} // namespace gwc::metrics
