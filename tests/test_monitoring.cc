/**
 * @file
 * Tests of the live-observability layer (telemetry/monitor.hh): run
 * correlation ids, /proc self-sampling, the ActivityBoard, the
 * MetricsSampler's JSONL/heartbeat outputs, the stall watchdog, the
 * Prometheus exposition, the flat-JSON reader that gwc_monitor and
 * gwc_benchdiff share, and the byte-identity of suite outputs with
 * monitoring on versus off.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flatjson.hh"
#include "common/logging.hh"
#include "metrics/profile_io.hh"
#include "runtime/inject.hh"
#include "runtime/session.hh"
#include "telemetry/monitor.hh"
#include "telemetry/stats.hh"
#include "workloads/suite.hh"

namespace gwc
{
namespace
{

using telemetry::ActivityBoard;
using telemetry::MetricsSampler;
using telemetry::MonitorConfig;
using workloads::SuiteOptions;
using workloads::WorkloadRun;

std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "gwc_monitoring_" + tag;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string>
nonEmptyLines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(line);
    return out;
}

/** Profiles of @p runs rendered to CSV (the tool's on-disk bytes). */
std::string
csvOf(const std::vector<WorkloadRun> &runs)
{
    std::ostringstream os;
    metrics::writeProfilesCsv(os, workloads::allProfiles(runs));
    return os.str();
}

// ---------------------------------------------------------------------
// Correlation ids and timestamps
// ---------------------------------------------------------------------

TEST(RunId, SixteenHexDigitsAndUnique)
{
    std::set<std::string> ids;
    for (int i = 0; i < 32; ++i) {
        std::string id = telemetry::mintRunId();
        ASSERT_EQ(id.size(), 16u);
        for (char c : id)
            EXPECT_TRUE((c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f'))
                << id;
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 32u) << "collisions across 32 mints";
}

TEST(RunId, IsoTimestampShape)
{
    std::string ts = telemetry::isoTimestampUtc();
    // "2026-08-08T12:34:56.789Z"
    ASSERT_EQ(ts.size(), 24u) << ts;
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[19], '.');
    EXPECT_EQ(ts.back(), 'Z');
}

TEST(ProcStat, SamplesSelf)
{
    auto ps = telemetry::sampleProcSelf();
    ASSERT_TRUE(ps.ok) << "/proc/self unreadable";
    EXPECT_GT(ps.rssKb, 0u);
    EXPECT_GE(ps.vmKb, ps.rssKb);
    EXPECT_GE(ps.threads, 1u);
    EXPECT_GE(ps.utimeSec, 0.0);
}

// ---------------------------------------------------------------------
// ActivityBoard
// ---------------------------------------------------------------------

TEST(ActivityBoard, TracksRunningProgressAndOutcomes)
{
    ActivityBoard board;
    auto empty = board.snapshot();
    EXPECT_EQ(empty.done, 0u);
    EXPECT_EQ(empty.running.size(), 0u);
    EXPECT_LT(empty.lastEventAgeSec, 0.0) << "no event yet";

    board.workloadBegin("BLS", "rid:BLS#1");
    board.workloadPhase("BLS", "simulate");
    board.workloadPhase("ghost", "simulate"); // no-op, not running
    board.progress(2, 100);

    auto mid = board.snapshot();
    ASSERT_EQ(mid.running.size(), 1u);
    EXPECT_EQ(mid.running[0].workload, "BLS");
    EXPECT_EQ(mid.running[0].attemptId, "rid:BLS#1");
    EXPECT_EQ(mid.running[0].phase, "simulate");
    EXPECT_EQ(mid.ctas, 2u);
    EXPECT_EQ(mid.warpInstrs, 100u);
    EXPECT_GE(mid.lastEventAgeSec, 0.0);

    board.workloadEnd("BLS", true);
    board.workloadBegin("MUM", "rid:MUM#1");
    board.workloadEnd("MUM", false);

    auto fin = board.snapshot();
    EXPECT_EQ(fin.done, 1u);
    EXPECT_EQ(fin.failed, 1u);
    EXPECT_TRUE(fin.running.empty());
}

TEST(ActivityBoard, StallUsesRowDeadlineThenSamplerDefault)
{
    ActivityBoard board;
    board.workloadBegin("slow", "rid:slow#1", 0.001);
    board.workloadBegin("free", "rid:free#1"); // no row deadline
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    // No default: only the row with its own deadline stalls.
    auto snap = board.snapshot(0.0);
    ASSERT_EQ(snap.running.size(), 2u);
    for (const auto &row : snap.running) {
        if (row.workload == "slow")
            EXPECT_TRUE(row.stalled);
        else
            EXPECT_FALSE(row.stalled) << row.workload;
    }

    // A tiny sampler default catches the other row too.
    auto strict = board.snapshot(0.001);
    for (const auto &row : strict.running)
        EXPECT_TRUE(row.stalled) << row.workload;

    // A new attempt resets the age (re-begin overwrites the entry).
    board.workloadBegin("slow", "rid:slow#2", 60.0);
    auto fresh = board.snapshot(0.0);
    for (const auto &row : fresh.running)
        if (row.workload == "slow") {
            EXPECT_EQ(row.attemptId, "rid:slow#2");
            EXPECT_FALSE(row.stalled);
        }
}

// ---------------------------------------------------------------------
// MetricsSampler
// ---------------------------------------------------------------------

TEST(Sampler, JsonlSeriesIsMonotoneAndParsable)
{
    telemetry::Registry reg;
    auto &ctr = reg.group("engine").counter("ticks", "test counter");
    ActivityBoard board;

    MonitorConfig cfg;
    cfg.metricsPath = tmpPath("series.jsonl");
    cfg.heartbeatPath = tmpPath("series_hb.json");
    cfg.runId = "cafe0123cafe0123";
    std::remove(cfg.metricsPath.c_str());

    {
        MetricsSampler sampler(cfg, &reg, &board);
        sampler.start();
        board.workloadBegin("BLS", "cafe0123cafe0123:BLS#1");
        for (int i = 0; i < 3; ++i) {
            ctr += 10;
            board.progress(1, 50);
            sampler.tickOnce();
        }
        board.workloadEnd("BLS", true);
        sampler.stop(); // takes the final sample
        EXPECT_GE(sampler.samples(), 4u);
    }

    auto lines = nonEmptyLines(slurp(cfg.metricsPath));
    ASSERT_GE(lines.size(), 4u);

    double prevSeq = -1, prevUp = -1, prevCtas = -1, prevTicks = -1;
    for (const auto &line : lines) {
        auto j = parseFlatJson(cfg.metricsPath, line);
        EXPECT_EQ(j.strs.at("run_id"), cfg.runId);
        EXPECT_FALSE(j.strs.at("ts").empty());

        double seq = j.nums.at("seq");
        double up = j.nums.at("uptime_sec");
        double ctas = j.nums.at("progress.ctas");
        double ticks = j.nums.at("counters.engine.ticks");
        EXPECT_GT(seq, prevSeq);
        EXPECT_GE(up, prevUp);
        EXPECT_GE(ctas, prevCtas);
        EXPECT_GE(ticks, prevTicks);
        prevSeq = seq;
        prevUp = up;
        prevCtas = ctas;
        prevTicks = ticks;

        // Every section is present on every sample.
        EXPECT_TRUE(j.nums.count("workloads.done"));
        EXPECT_TRUE(j.nums.count("progress.warp_instrs"));
        EXPECT_TRUE(j.nums.count("proc.rss_kb"));
        EXPECT_TRUE(j.nums.count("pool.workers"));
    }
    EXPECT_EQ(prevCtas, 3.0);
    EXPECT_EQ(prevTicks, 30.0);

    // The final heartbeat is a well-formed single object.
    auto hb = parseFlatJson(cfg.heartbeatPath, slurp(cfg.heartbeatPath));
    EXPECT_EQ(hb.strs.at("run_id"), cfg.runId);
    EXPECT_EQ(hb.nums.at("workloads.done"), 1.0);
    EXPECT_EQ(hb.nums.at("workloads.running"), 0.0);

    std::remove(cfg.metricsPath.c_str());
    std::remove(cfg.heartbeatPath.c_str());
}

TEST(Sampler, StopIsIdempotentAndShortRunsGetOneSample)
{
    ActivityBoard board;
    MonitorConfig cfg;
    cfg.intervalSec = 3600.0; // never fires on its own
    cfg.metricsPath = tmpPath("short.jsonl");
    std::remove(cfg.metricsPath.c_str());

    MetricsSampler sampler(cfg, nullptr, &board);
    sampler.start();
    sampler.stop();
    sampler.stop(); // idempotent
    EXPECT_EQ(sampler.samples(), 1u) << "stop() takes a final sample";

    auto lines = nonEmptyLines(slurp(cfg.metricsPath));
    ASSERT_EQ(lines.size(), 1u);
    auto j = parseFlatJson(cfg.metricsPath, lines[0]);
    EXPECT_TRUE(j.nums.count("uptime_sec"));
    std::remove(cfg.metricsPath.c_str());
}

TEST(Sampler, StallWarningFiresOncePerAttempt)
{
    std::vector<std::string> warned;
    setLogSink([&](LogLevel level, const std::string &line) {
        if (level == LogLevel::Warn &&
            line.find("stall") != std::string::npos)
            warned.push_back(line);
    });

    ActivityBoard board;
    MonitorConfig cfg;
    cfg.stallAfterSec = 0.001;
    board.workloadBegin("NW", "rid:NW#1");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    MetricsSampler sampler(cfg, nullptr, &board);
    sampler.start();
    sampler.tickOnce();
    sampler.tickOnce(); // same attempt: no second warning
    ASSERT_EQ(warned.size(), 1u);
    EXPECT_NE(warned[0].find("rid:NW#1"), std::string::npos)
        << warned[0];

    // A retry is a new attempt id and warns again.
    board.workloadBegin("NW", "rid:NW#2", 0.001);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sampler.tickOnce();
    EXPECT_EQ(warned.size(), 2u);

    sampler.stop();
    setLogSink(nullptr);
}

TEST(Sampler, HeartbeatReflectsAnInjectedFailure)
{
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("timeout@BLS").ok());

    ActivityBoard board;
    SuiteOptions opts;
    opts.inject = &plan;
    opts.activity = &board;
    opts.runId = "feedface00000001";
    auto runs = workloads::runSuite({"BLS", "NW"}, opts);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_TRUE(runs[0].failed());
    EXPECT_EQ(runs[0].attemptId, "feedface00000001:BLS#1");
    EXPECT_EQ(runs[1].attemptId, "feedface00000001:NW#1");

    MonitorConfig cfg;
    cfg.heartbeatPath = tmpPath("fail_hb.json");
    cfg.runId = opts.runId;
    MetricsSampler sampler(cfg, nullptr, &board);
    sampler.tickOnce();

    auto hb = parseFlatJson(cfg.heartbeatPath, slurp(cfg.heartbeatPath));
    EXPECT_EQ(hb.nums.at("workloads.done"), 1.0);
    EXPECT_EQ(hb.nums.at("workloads.failed"), 1.0);
    EXPECT_EQ(hb.nums.at("workloads.running"), 0.0);
    EXPECT_GT(hb.nums.at("progress.ctas"), 0.0)
        << "the surviving workload reported CTA progress";
    std::remove(cfg.heartbeatPath.c_str());

    // The failure record carries the attempt id too.
    auto failures = workloads::suiteFailures(runs);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].attemptId, "feedface00000001:BLS#1");
}

// ---------------------------------------------------------------------
// Byte-identity: monitoring must never change results
// ---------------------------------------------------------------------

class MonitoringIdentity : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(MonitoringIdentity, OutputsMatchWithSamplerOnAndOff)
{
    const uint32_t jobs = GetParam();
    const std::vector<std::string> names = {"BLS", "MUM", "NW"};

    SuiteOptions plain;
    plain.jobs = jobs;
    telemetry::Registry plainReg;
    plain.stats = &plainReg;
    auto baseline = workloads::runSuite(names, plain);

    ActivityBoard board;
    telemetry::Registry monReg;
    SuiteOptions monitored;
    monitored.jobs = jobs;
    monitored.stats = &monReg;
    monitored.activity = &board;
    monitored.runId = telemetry::mintRunId();

    MonitorConfig cfg;
    cfg.intervalSec = 0.01;
    cfg.metricsPath = tmpPath("identity.jsonl");
    cfg.runId = monitored.runId;
    std::remove(cfg.metricsPath.c_str());
    MetricsSampler sampler(cfg, &monReg, &board);
    sampler.start();
    auto observed = workloads::runSuite(names, monitored);
    sampler.stop();
    EXPECT_GE(sampler.samples(), 1u);
    std::remove(cfg.metricsPath.c_str());

    // Profiles: byte-for-byte the CSV a tool would write.
    EXPECT_EQ(csvOf(observed), csvOf(baseline));

    // Stats counters: same names, same totals, same order.
    EXPECT_EQ(monReg.counterSnapshot(), plainReg.counterSnapshot());

    // The board agrees with the suite's own accounting.
    auto snap = board.snapshot();
    EXPECT_EQ(snap.done, names.size());
    EXPECT_EQ(snap.failed, 0u);
    EXPECT_TRUE(snap.running.empty());
    EXPECT_GT(snap.ctas, 0u);
    EXPECT_GT(snap.warpInstrs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Jobs, MonitoringIdentity,
                         ::testing::Values(1u, 4u),
                         [](const auto &info) {
                             return "jobs" +
                                    std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

TEST(Prom, ExpositionFormatLint)
{
    telemetry::Registry reg;
    auto &g = reg.group("engine.core"); // '.' must sanitize to '_'
    g.counter("warp instrs", "warp\ninstruction \\slots") += 42;
    g.timer("sim", "simulation time").addNs(1500000000);
    auto &h = g.histogram("cta_size", "threads per CTA");
    h.sample(0);
    h.sample(3);
    h.sample(100);

    std::ostringstream os;
    reg.writeProm(os);
    const std::string text = os.str();
    auto lines = nonEmptyLines(text);
    ASSERT_FALSE(lines.empty());

    // Every line is a comment or "name[{labels}] value"; names use
    // the legal charset and carry the gwc_ prefix.
    std::set<std::string> helped, typed;
    for (const auto &line : lines) {
        if (line.rfind("# HELP ", 0) == 0) {
            helped.insert(line.substr(7, line.find(' ', 7) - 7));
            EXPECT_EQ(line.find('\n'), std::string::npos);
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            typed.insert(line.substr(7, line.find(' ', 7) - 7));
            continue;
        }
        size_t nameEnd = line.find_first_of("{ ");
        ASSERT_NE(nameEnd, std::string::npos) << line;
        std::string name = line.substr(0, nameEnd);
        EXPECT_EQ(name.rfind("gwc_", 0), 0u) << name;
        for (char c : name)
            EXPECT_TRUE((c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_')
                << name;
    }

    // Each family announced exactly once, HELP and TYPE both.
    EXPECT_EQ(helped, typed);
    EXPECT_TRUE(helped.count("gwc_engine_core_warp_instrs_total"));
    EXPECT_TRUE(helped.count("gwc_engine_core_sim_seconds_total"));
    EXPECT_TRUE(helped.count("gwc_engine_core_sim_laps_total"));
    EXPECT_TRUE(helped.count("gwc_engine_core_cta_size"));

    EXPECT_NE(
        text.find("gwc_engine_core_warp_instrs_total 42"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("gwc_engine_core_sim_seconds_total 1.5"),
              std::string::npos);
    EXPECT_NE(text.find("gwc_engine_core_sim_laps_total 1"),
              std::string::npos);

    // Histogram: cumulative buckets ending at +Inf == count == _count.
    uint64_t prevCum = 0;
    bool sawInf = false;
    for (const auto &line : lines) {
        if (line.rfind("gwc_engine_core_cta_size_bucket", 0) != 0)
            continue;
        uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, prevCum) << "buckets must be cumulative: " << line;
        prevCum = v;
        if (line.find("le=\"+Inf\"") != std::string::npos) {
            sawInf = true;
            EXPECT_EQ(v, 3u);
        }
    }
    EXPECT_TRUE(sawInf);
    EXPECT_NE(text.find("gwc_engine_core_cta_size_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("gwc_engine_core_cta_size_sum 103"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Session wiring: report correlation + Prometheus output
// ---------------------------------------------------------------------

TEST(SessionMonitoring, ReportCarriesRunIdTimestampsAndAttemptIds)
{
    std::string statsPath = tmpPath("report.json");
    std::string promPath = tmpPath("report.prom");
    std::string hbPath = tmpPath("report_hb.json");
    std::remove(statsPath.c_str());
    std::remove(promPath.c_str());

    runtime::SessionOptions so;
    so.injectSpecs = "verify-mismatch@MUM";
    so.statsOut = statsPath;
    so.promOut = promPath;
    so.heartbeatOut = hbPath;
    so.metricsIntervalSec = 0.01;
    runtime::Session session(std::move(so));

    const std::string runId = session.runId();
    ASSERT_EQ(runId.size(), 16u);
    ASSERT_NE(session.sampler(), nullptr);

    session.runSuite({"BLS", "MUM"});
    EXPECT_EQ(session.finish(), 2);

    auto report = parseFlatJson(statsPath, slurp(statsPath));
    EXPECT_EQ(report.strs.at("run_id"), runId);
    EXPECT_EQ(report.strs.at("started_at").size(), 24u);
    EXPECT_EQ(report.strs.at("ended_at").size(), 24u);
    EXPECT_EQ(report.strs.at("workloads.0.attempt_id"),
              runId + ":BLS#1");
    EXPECT_EQ(report.strs.at("workloads.1.attempt_id"),
              runId + ":MUM#1");
    EXPECT_EQ(report.strs.at("failures.0.attempt_id"),
              runId + ":MUM#1");

    // finish() wrote the quiesced Prometheus exposition.
    std::string prom = slurp(promPath);
    EXPECT_NE(prom.find("# TYPE gwc_suite_workloads_total counter"),
              std::string::npos)
        << prom;

    std::remove(statsPath.c_str());
    std::remove(promPath.c_str());
    std::remove(hbPath.c_str());
}

// ---------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------

TEST(StructuredLog, JsonEventsParseAndCarryTheRunId)
{
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &line) {
        lines.push_back(line);
    });
    setLogJson(true);
    setLogRunId("0123456789abcdef");

    logEvent(LogLevel::Warn, "stall",
             {{"workload", "BLS"}, {"attempt_id", "x:BLS#1"}});
    logEvent(LogLevel::Debug, "ignored", {}); // below default level

    setLogRunId("");
    setLogJson(false);
    setLogSink(nullptr);

    ASSERT_EQ(lines.size(), 1u);
    auto j = parseFlatJson("log", lines[0]);
    EXPECT_EQ(j.strs.at("level"), "warn");
    EXPECT_EQ(j.strs.at("event"), "stall");
    EXPECT_EQ(j.strs.at("run_id"), "0123456789abcdef");
    EXPECT_EQ(j.strs.at("workload"), "BLS");
    EXPECT_EQ(j.strs.at("attempt_id"), "x:BLS#1");
    EXPECT_FALSE(j.strs.at("ts").empty());
}

TEST(StructuredLog, LevelNamesParse)
{
    LogLevel lv;
    EXPECT_TRUE(parseLogLevel("debug", &lv));
    EXPECT_EQ(lv, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("warn", &lv));
    EXPECT_EQ(lv, LogLevel::Warn);
    EXPECT_FALSE(parseLogLevel("chatty", &lv));
}

// ---------------------------------------------------------------------
// Flat JSON reader (shared by gwc_monitor and gwc_benchdiff)
// ---------------------------------------------------------------------

TEST(FlatJsonReader, NumbersStringsBoolsArraysNest)
{
    auto j = parseFlatJson(
        "t", "{\"a\":{\"b\":1.5},\"s\":\"hi\",\"ok\":true,"
             "\"off\":false,\"gone\":null,\"v\":[10,{\"x\":2}]}");
    EXPECT_EQ(j.nums.at("a.b"), 1.5);
    EXPECT_EQ(j.strs.at("s"), "hi");
    EXPECT_EQ(j.strs.at("ok"), "true");
    EXPECT_EQ(j.strs.at("off"), "false");
    EXPECT_EQ(j.nums.at("v.0"), 10.0);
    EXPECT_EQ(j.nums.at("v.1.x"), 2.0);
    EXPECT_FALSE(j.nums.count("gone"));
    EXPECT_FALSE(j.strs.count("gone"));
}

TEST(FlatJsonReader, MalformedInputRaisesDataLoss)
{
    for (const char *bad : {"{", "{\"a\":}", "tru", "{\"a\":1,}x"}) {
        try {
            parseFlatJson("bad", bad);
            FAIL() << "expected gwc::Error for: " << bad;
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::DataLoss) << bad;
        }
    }
}


TEST(HeartbeatDiscovery, ListsOnlyHeartbeatFilesSorted)
{
    // gwc_monitor --follow discovers sessions by the heartbeat naming
    // convention: "*.heartbeat.json", non-recursive, sorted.
    std::string dir = testing::TempDir() + "hb_discovery";
    std::filesystem::create_directories(dir + "/sub.heartbeat.json");
    auto touch = [&](const std::string &name) {
        std::ofstream(dir + "/" + name) << "{}";
    };
    touch("worker-1.heartbeat.json");
    touch("serve.heartbeat.json");
    touch("metrics.jsonl");
    touch("notes.txt");
    touch(".heartbeat.json"); // bare suffix: not a session file

    auto files = telemetry::listHeartbeatFiles(dir);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], dir + "/serve.heartbeat.json");
    EXPECT_EQ(files[1], dir + "/worker-1.heartbeat.json");

    // Missing directory degrades to an empty list, not an error.
    EXPECT_TRUE(
        telemetry::listHeartbeatFiles(dir + "/nope").empty());
}

} // anonymous namespace
} // namespace gwc
