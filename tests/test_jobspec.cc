/**
 * @file
 * JobSpec/JobResult API tests: canonical serialization goldens, the
 * argv -> JobSpec -> JSON -> JobSpec round trip, schema versioning
 * gates and the shared local execution path (runJobLocally).
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "runtime/jobspec.hh"

using namespace gwc;
using runtime::JobResult;
using runtime::JobSpec;

namespace
{

/** A JobSpec with every serialized field set away from its default. */
JobSpec
fullSpec()
{
    JobSpec spec;
    spec.workloads = {"BLS", "RD"};
    spec.priority = 7;
    spec.profilesOut = "out/profiles.csv";
    spec.session.tool = "gwc_characterize";
    spec.session.suite.scale = 3;
    spec.session.suite.ctaSampleStride = 2;
    spec.session.suite.jobs = 4;
    spec.session.suite.eventBatch = 128;
    spec.session.suite.verify = false;
    spec.session.suite.keepGoing = true;
    spec.session.suite.retry.maxRetries = 2;
    spec.session.suite.retry.backoffSec = 0.25;
    spec.session.suite.limits.timeoutSec = 1.5;
    spec.session.suite.limits.softTimeoutSec = 0;
    spec.session.suite.limits.memBudgetBytes = 1048576;
    spec.session.injectSpecs = "alloc-fail@BLS:1";
    spec.session.cacheDir = "/tmp/c";
    spec.session.cacheMode = "ro";
    spec.session.statsOut = "s.json";
    spec.session.traceOut = "t.trace";
    spec.session.timelineOut = "tl.json";
    spec.session.metricsOut = "m.jsonl";
    spec.session.metricsIntervalSec = 0.5;
    spec.session.heartbeatOut = "hb.json";
    spec.session.promOut = "p.prom";
    spec.session.traceConfig.ctaSampleStride = 4;
    spec.session.traceConfig.bufferBytes = 1024;
    spec.session.traceConfig.chunkEvents = 100;
    spec.session.traceConfig.chunkBytes = 2048;
    spec.session.traceConfig.flightRecorder = true;
    return spec;
}

} // anonymous namespace

TEST(JobSpec, GoldenJson)
{
    // The wire schema is a contract: any change to this string is a
    // schema change and needs a version bump + docs/SERVICE.md update.
    EXPECT_EQ(
        fullSpec().toJson(),
        "{\"schema_version\":1,\"tool\":\"gwc_characterize\","
        "\"priority\":7,\"workloads\":[\"BLS\",\"RD\"],"
        "\"profiles_out\":\"out/profiles.csv\",\"suite\":{\"scale\":3,"
        "\"cta_stride\":2,\"jobs\":4,\"batch\":128,\"verify\":false,"
        "\"keep_going\":true,\"retries\":2,\"retry_backoff_sec\":0.25,"
        "\"timeout_sec\":1.5,\"soft_timeout_sec\":0,"
        "\"mem_budget_bytes\":1048576},\"inject\":\"alloc-fail@BLS:1\","
        "\"cache\":{\"dir\":\"/tmp/c\",\"mode\":\"ro\"},"
        "\"outputs\":{\"stats\":\"s.json\",\"trace\":\"t.trace\","
        "\"timeline\":\"tl.json\",\"metrics\":\"m.jsonl\","
        "\"metrics_interval_sec\":0.5,\"heartbeat\":\"hb.json\","
        "\"prom\":\"p.prom\"},\"trace_config\":{\"cta_stride\":4,"
        "\"buffer_bytes\":1024,\"chunk_events\":100,"
        "\"chunk_bytes\":2048,\"flight\":true}}");
}

TEST(JobSpec, RoundTripIsByteIdentical)
{
    for (const JobSpec &spec : {JobSpec(), fullSpec()}) {
        const std::string json = spec.toJson();
        auto parsed = runtime::parseJobSpec("test", json);
        ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
        EXPECT_EQ(parsed.value().toJson(), json);
    }
}

TEST(JobSpec, ArgvBuildsTheSameSpecAsTheWire)
{
    // The CLI flag surface and the wire schema are the same JobSpec:
    // argv -> JobSpec -> JSON -> JobSpec must be byte-stable.
    JobSpec spec;
    spec.session.tool = "gwc_characterize";
    cli::Parser p("gwc_characterize", "[options] [workload ...]");
    runtime::addJobSpecFlags(p, spec);
    const char *argv[] = {"gwc_characterize", "--scale", "2",
                          "--cta-stride", "3", "--jobs", "1",
                          "--no-verify", "--retries", "1",
                          "--timeout", "30", "--priority", "9",
                          "--inject", "alloc-fail@BLS",
                          "--cache-dir", "/tmp/cc", "--cache", "ro",
                          "--stats-out", "st.json", "BLS", "RD"};
    spec.workloads =
        p.parse(int(std::size(argv)), const_cast<char **>(argv));

    EXPECT_EQ(spec.workloads, (std::vector<std::string>{"BLS", "RD"}));
    EXPECT_EQ(spec.priority, 9u);
    EXPECT_EQ(spec.session.suite.scale, 2u);
    EXPECT_FALSE(spec.session.suite.verify);
    EXPECT_EQ(spec.session.injectSpecs, "alloc-fail@BLS");

    const std::string json = spec.toJson();
    auto parsed = runtime::parseJobSpec("wire", json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().toJson(), json);
}

TEST(JobSpec, RejectsMissingAndNewerSchemaVersions)
{
    auto missing = runtime::parseJobSpec("t", "{\"tool\":\"x\"}");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(missing.status().message().find("schema_version"),
              std::string::npos);

    auto newer =
        runtime::parseJobSpec("t", "{\"schema_version\":999}");
    ASSERT_FALSE(newer.ok());
    EXPECT_EQ(newer.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(newer.status().message().find("newer"),
              std::string::npos);
}

TEST(JobSpec, AcceptsOlderDocumentsWithMissingFields)
{
    // A version-1 document carrying only a few fields parses with
    // defaults for the rest — the accept-older contract.
    auto parsed = runtime::parseJobSpec(
        "t", "{\"schema_version\":1,\"workloads\":[\"RD\"],"
             "\"suite\":{\"scale\":5}}");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const JobSpec &spec = parsed.value();
    EXPECT_EQ(spec.workloads, (std::vector<std::string>{"RD"}));
    EXPECT_EQ(spec.session.suite.scale, 5u);
    JobSpec dflt;
    EXPECT_EQ(spec.session.suite.verify, dflt.session.suite.verify);
    EXPECT_EQ(spec.session.suite.eventBatch,
              dflt.session.suite.eventBatch);
    EXPECT_EQ(spec.session.cacheMode, dflt.session.cacheMode);
}

TEST(JobSpec, StripLocalOutputsClearsServerLocalFields)
{
    JobSpec spec = fullSpec();
    auto stripped = runtime::stripLocalOutputs(spec);
    EXPECT_EQ(stripped.size(), 8u);
    EXPECT_TRUE(spec.profilesOut.empty());
    EXPECT_TRUE(spec.session.statsOut.empty());
    EXPECT_TRUE(spec.session.traceOut.empty());
    EXPECT_TRUE(spec.session.timelineOut.empty());
    EXPECT_TRUE(spec.session.metricsOut.empty());
    EXPECT_TRUE(spec.session.heartbeatOut.empty());
    EXPECT_TRUE(spec.session.promOut.empty());
    EXPECT_TRUE(spec.session.cacheDir.empty());
    EXPECT_EQ(spec.session.cacheMode, "rw");
    // What the client may still choose survives.
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"BLS", "RD"}));
    EXPECT_EQ(spec.session.suite.scale, 3u);
    // Idempotent: nothing left to strip.
    EXPECT_TRUE(runtime::stripLocalOutputs(spec).empty());
}

TEST(JobResult, RoundTripIsByteIdentical)
{
    JobResult r;
    r.id = "req-1";
    r.tool = "gwc_characterize";
    r.runId = "abcd1234abcd1234";
    r.exitCode = 2;
    r.wallSec = 1.25;
    r.cacheHits = 1;
    r.cacheMisses = 2;
    runtime::JobResultRow ok;
    ok.name = "RD";
    ok.verified = true;
    ok.warpInstrs = 12345;
    runtime::JobResultRow bad;
    bad.name = "BLS";
    bad.status = "failed";
    bad.errorCode = "out_of_memory";
    bad.errorMessage = "injected \"fault\"";
    bad.phase = "setup";
    bad.attempts = 2;
    r.rows = {ok, bad};
    r.profilesCsv = "# gwc-profile v2\nname,kernel\n";

    const std::string json = r.toJson();
    auto parsed = runtime::parseJobResult("t", json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().toJson(), json);
    EXPECT_EQ(parsed.value().rows.size(), 2u);
    EXPECT_EQ(parsed.value().rows[1].errorCode, "out_of_memory");
    EXPECT_EQ(parsed.value().profilesCsv, r.profilesCsv);
}

TEST(RunJobLocally, CleanRunProducesRowsAndProfileCsv)
{
    JobSpec spec;
    spec.session.tool = "gwc_test";
    spec.session.suite.jobs = 1;
    spec.workloads = {"RD"};
    JobResult result = runtime::runJobLocally(spec);
    EXPECT_EQ(result.exitCode, 0) << result.errorMessage;
    EXPECT_FALSE(result.runId.empty());
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0].name, "RD");
    EXPECT_EQ(result.rows[0].status, "ok");
    EXPECT_TRUE(result.rows[0].verified);
    EXPECT_GT(result.rows[0].warpInstrs, 0u);
    EXPECT_EQ(result.profilesCsv.rfind("# gwc-profile", 0), 0u);
}

TEST(RunJobLocally, UnknownWorkloadIsAStructuredFatal)
{
    JobSpec spec;
    spec.workloads = {"NOPE"};
    JobResult result = runtime::runJobLocally(spec);
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_EQ(result.errorCode, "not_found");
    EXPECT_NE(result.errorMessage.find("NOPE"), std::string::npos);
    EXPECT_TRUE(result.rows.empty());
}

TEST(RunJobLocally, InjectedFailureMapsToPartialExit)
{
    JobSpec spec;
    spec.session.suite.jobs = 1;
    spec.session.injectSpecs = "alloc-fail@BLS";
    spec.workloads = {"BLS", "RD"};
    JobResult result = runtime::runJobLocally(spec);
    EXPECT_EQ(result.exitCode, 2);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.rows[0].status, "failed");
    EXPECT_EQ(result.rows[0].errorCode, "resource_exhausted");
    EXPECT_FALSE(result.rows[0].phase.empty());
    EXPECT_EQ(result.rows[1].status, "ok");
}
