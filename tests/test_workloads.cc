/**
 * @file
 * Integration tests for the workload collection: every registered
 * workload must run, verify against its host reference, and exhibit
 * the characteristic signature it exists to provide.
 */

#include <gtest/gtest.h>

#include "workloads/suite.hh"

namespace gwc::workloads
{
namespace
{

using metrics::KernelProfile;

/** Run one workload and return its profiles (verification on). */
WorkloadRun
runOne(const std::string &abbrev)
{
    SuiteOptions opts;
    opts.verify = true;
    auto runs = runSuite({abbrev}, opts);
    EXPECT_EQ(runs.size(), 1u);
    return runs.front();
}

/** Parameterized: every workload verifies and produces profiles. */
class AllWorkloads : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllWorkloads, RunsAndVerifies)
{
    WorkloadRun run = runOne(GetParam());
    EXPECT_TRUE(run.verified);
    EXPECT_FALSE(run.profiles.empty());
    EXPECT_GT(run.totals.warpInstrs, 1000u);
    for (const auto &p : run.profiles) {
        // Sanity of every characteristic vector.
        const auto &m = p.metrics;
        EXPECT_GE(m[metrics::kSimdActivity], 0.0) << p.label();
        EXPECT_LE(m[metrics::kSimdActivity], 1.0 + 1e-9) << p.label();
        EXPECT_GE(m[metrics::kDivBranchFrac], 0.0) << p.label();
        EXPECT_LE(m[metrics::kDivBranchFrac], 1.0 + 1e-9)
            << p.label();
        EXPECT_LE(m[metrics::kCoalescingEff], 1.0 + 1e-9)
            << p.label();
        for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
            EXPECT_TRUE(std::isfinite(m[c]))
                << p.label() << " " << metrics::characteristicName(c);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllWorkloads, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, RegistryIsConsistent)
{
    auto names = workloadNames();
    EXPECT_FALSE(names.empty());
    for (const auto &n : names) {
        auto wl = makeWorkload(n);
        EXPECT_EQ(wl->desc().abbrev, n);
        EXPECT_FALSE(wl->desc().suite.empty());
        EXPECT_FALSE(wl->desc().name.empty());
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    try {
        makeWorkload("NOPE");
        FAIL() << "expected gwc::Error";
    } catch (const gwc::Error &e) {
        EXPECT_EQ(e.code(), gwc::ErrorCode::NotFound);
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos);
    }
}

TEST(Workloads, CheckWorkloadNames)
{
    EXPECT_TRUE(checkWorkloadNames({"BLS", "MUM"}).ok());
    auto st = checkWorkloadNames({"BLS", "MUN"});
    EXPECT_EQ(st.code(), gwc::ErrorCode::NotFound);
    // Near-miss suggestion surfaces in the message.
    EXPECT_NE(st.message().find("MUM"), std::string::npos);
}

TEST(Workloads, MetricMatrixShape)
{
    SuiteOptions opts;
    opts.verify = false;
    auto runs = runSuite({"BLS", "RD"}, opts);
    auto profiles = allProfiles(runs);
    auto m = metricMatrix(profiles);
    auto labels = profileLabels(profiles);
    EXPECT_EQ(m.rows(), profiles.size());
    EXPECT_EQ(m.cols(), size_t(metrics::kNumCharacteristics));
    EXPECT_EQ(labels.size(), profiles.size());
    EXPECT_EQ(labels[0].rfind("BLS.", 0), 0u);
}

// --- Signature checks: the named workloads must show the behaviour
// --- the paper calls out for them.

TEST(Signatures, BlackScholesIsSfuHeavyAndCoalesced)
{
    auto run = runOne("BLS");
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kFracSfu], 0.05);
    EXPECT_GT(m[metrics::kFracFpAlu], 0.2);
    EXPECT_NEAR(m[metrics::kCoalescingEff], 1.0, 1e-6);
    EXPECT_LT(m[metrics::kDivBranchFrac], 0.05);
    EXPECT_EQ(m[metrics::kBarriersPerKiloInstr], 0.0);
}

TEST(Signatures, ReductionIsBarrierAndSmemHeavy)
{
    auto run = runOne("RD");
    ASSERT_EQ(run.profiles.size(), 2u);
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kFracSmem], 0.08);
    EXPECT_GT(m[metrics::kBarriersPerKiloInstr], 10.0);
    // Only the intra-warp tail of the tree (s < 32) diverges; the
    // upper levels are warp-uniform, so the fraction is small but
    // strictly positive and activity dips below full.
    EXPECT_GT(m[metrics::kDivBranchFrac], 0.02);
    EXPECT_LT(m[metrics::kSimdActivity], 0.97);
}

TEST(Signatures, ScanHasInterCtaSharingAndBarriers)
{
    auto run = runOne("SLA");
    ASSERT_EQ(run.profiles.size(), 3u);
    // addUniform reads the sums array written by scanBlocks: the
    // profile of the whole workload must show inter-CTA sharing in
    // the addUniform kernel (sums lines read by every CTA).
    const auto &add = run.profiles[2];
    EXPECT_EQ(add.kernel, "addUniform");
    EXPECT_GT(add.metrics[metrics::kInterCtaSharedFrac], 0.0);
    const auto &scan = run.profiles[0].metrics;
    EXPECT_GT(scan[metrics::kBarriersPerKiloInstr], 5.0);
    EXPECT_GT(scan[metrics::kFracSmem], 0.1);
}

TEST(Signatures, MumIsDivergentAndIrregular)
{
    auto run = runOne("MUM");
    const auto &m = run.profiles[0].metrics;
    // Data-dependent trie walks: heavy loop divergence, low
    // activity, irregular gathers.
    EXPECT_GT(m[metrics::kDivBranchFrac], 0.15);
    EXPECT_LT(m[metrics::kSimdActivity], 0.85);
    EXPECT_GT(m[metrics::kTxPerGmemAccess], 2.0);
    EXPECT_GT(m[metrics::kStrideIrregFrac], 0.3);
}

TEST(Signatures, SimilarityScoreMergeLoopDiverges)
{
    auto run = runOne("SS");
    ASSERT_EQ(run.profiles.size(), 2u);
    const auto &score = run.profiles[1].metrics;
    EXPECT_GT(score[metrics::kDivBranchFrac], 0.2);
    EXPECT_LT(score[metrics::kSimdActivity], 0.8);
    EXPECT_GT(score[metrics::kTxPerGmemAccess], 2.0);
}

TEST(Signatures, SpmvRowLengthDivergence)
{
    auto run = runOne("SPMV");
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kDivBranchFrac], 0.3);
    EXPECT_GT(m[metrics::kStrideIrregFrac], 0.2);
}

TEST(Signatures, KmeansKernelsContrastInCoalescing)
{
    auto run = runOne("KM");
    ASSERT_EQ(run.profiles.size(), 2u);
    const auto &swap = run.profiles[0];
    const auto &assign = run.profiles[1];
    ASSERT_EQ(swap.kernel, "swap");
    // The transpose kernel reads point-major rows (stride f):
    // many transactions per access. The assignment kernel reads
    // feature-major (coalesced) points and broadcast centroids.
    EXPECT_GT(swap.metrics[metrics::kTxPerGmemAccess],
              3.0 * assign.metrics[metrics::kTxPerGmemAccess]);
    EXPECT_GT(assign.metrics[metrics::kCoalescingEff], 0.5);
}

TEST(Signatures, CpAndMriqAreSfuSaturatedUniform)
{
    for (const char *name : {"CP", "MRIQ"}) {
        auto run = runOne(name);
        const auto &m = run.profiles.back().metrics;
        EXPECT_GT(m[metrics::kFracSfu], 0.03) << name;
        EXPECT_GT(m[metrics::kStrideUniformFrac], 0.3) << name;
        EXPECT_EQ(m[metrics::kDivBranchFrac], 0.0) << name;
        EXPECT_NEAR(m[metrics::kSimdActivity], 1.0, 1e-6) << name;
    }
}

TEST(Signatures, HybridSortScatterIsUncoalesced)
{
    auto run = runOne("HSORT");
    ASSERT_EQ(run.profiles.size(), 3u);
    const auto &scatter = run.profiles[1];
    ASSERT_EQ(scatter.kernel, "scatter");
    EXPECT_GT(scatter.metrics[metrics::kTxPerGmemAccess], 4.0);
    const auto &bitonic = run.profiles[2];
    EXPECT_GT(bitonic.metrics[metrics::kBarriersPerKiloInstr], 10.0);
    EXPECT_GT(bitonic.metrics[metrics::kDivBranchFrac], 0.1);
}

TEST(Signatures, BfsIsSparseAndDivergent)
{
    auto run = runOne("BFS");
    const auto &expand = run.profiles[0].metrics;
    EXPECT_GT(expand[metrics::kDivBranchFrac], 0.3);
    EXPECT_LT(expand[metrics::kSimdActivity], 0.6);
    EXPECT_GT(expand[metrics::kStrideIrregFrac], 0.3);
}

TEST(Signatures, NwDiagonalAccessUncoalesced)
{
    auto run = runOne("NW");
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kTxPerGmemAccess], 8.0);
    EXPECT_LT(m[metrics::kCoalescingEff], 0.2);
}

TEST(Signatures, MatrixMulSharedMemoryHeavy)
{
    auto run = runOne("MM");
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kFracSmem], 0.15);
    EXPECT_GT(m[metrics::kBarriersPerKiloInstr], 2.0);
    EXPECT_GT(m[metrics::kIlp16], 1.2);
    EXPECT_NEAR(m[metrics::kBankConflictDeg], 1.0, 0.2);
}

TEST(Signatures, StencilAndHotspotHaveHighReuse)
{
    for (const char *name : {"STC", "HS"}) {
        auto run = runOne(name);
        const auto &m = run.profiles[0].metrics;
        EXPECT_GT(m[metrics::kReuseShortFrac], 0.3) << name;
    }
}

TEST(Signatures, NnIsMemoryIntensityOutlier)
{
    // NN moves far more DRAM bytes per instruction than the
    // compute-dense tiled matmul.
    auto nn = runOne("NN");
    auto mm = runOne("MM");
    EXPECT_GT(nn.profiles[0].metrics[metrics::kMemIntensity],
              2.0 * mm.profiles[0].metrics[metrics::kMemIntensity]);
}

TEST(Signatures, HistogramIsAtomicHeavy)
{
    auto run = runOne("HIST");
    const auto &m = run.profiles[0].metrics;
    EXPECT_GT(m[metrics::kFracAtomic], 0.02);
    // Skewed bins produce shared-memory conflicts.
    EXPECT_GT(m[metrics::kBankConflictDeg], 1.2);
}

} // anonymous namespace
} // namespace gwc::workloads
