/**
 * @file
 * Property tests for the trace corpus replay engine: collectors fed
 * from a recording must produce output byte-identical to the live
 * run, for every chunk-size regime (one CTA block per chunk, the
 * default, one giant chunk) and any replay --jobs; and the footer
 * index must make kernel- and CTA-filtered replay decode only the
 * chunks that can match (asserted through the reader's decode
 * counters).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/hotspots.hh"
#include "metrics/profile_io.hh"
#include "metrics/profiler.hh"
#include "runtime/status.hh"
#include "simt/engine.hh"
#include "telemetry/replay.hh"
#include "telemetry/trace.hh"

namespace gwc
{
namespace
{

using namespace telemetry;

// ---------------------------------------------------------------- kernels

/** Shared-memory squares with a predicated tail and a barrier. */
simt::WarpTask
barrierKernel(simt::Warp &w)
{
    uint64_t out = w.param<uint64_t>(0);
    uint32_t n = w.param<uint32_t>(1);
    simt::Reg<uint32_t> i = w.globalIdX();
    simt::Reg<uint32_t> t = w.tidLinear();
    w.If(i < n, [&] { w.stsE<uint32_t>(0, t, i * i); });
    co_await w.barrier();
    w.If(i < n, [&] {
        simt::Reg<uint32_t> v = w.ldsE<uint32_t>(0, t);
        w.stg<uint32_t>(out, i, v);
    });
    co_return;
}

/** Strided global traffic with a data-dependent chain (ILP food). */
simt::WarpTask
chainKernel(simt::Warp &w)
{
    uint64_t buf = w.param<uint64_t>(0);
    simt::Reg<uint32_t> i = w.globalIdX();
    simt::Reg<uint32_t> a = w.ldg<uint32_t>(buf, i);
    simt::Reg<uint32_t> b = a + a;
    simt::Reg<uint32_t> c = b * b;
    w.stg<uint32_t>(buf, i, c);
    co_return;
}

/**
 * One live run of both kernels with @p hooks attached; "bk" runs
 * @p ctas CTA blocks, "chain" runs two.
 */
void
runBoth(const std::vector<simt::ProfilerHook *> &hooks,
        uint32_t ctas = 3)
{
    simt::Engine e;
    const uint32_t n = ctas * 64 - 10;
    auto out = e.alloc<uint32_t>(ctas * 64);
    auto buf = e.alloc<uint32_t>(2 * 64);
    for (auto *h : hooks)
        e.addHook(h);
    simt::KernelParams p;
    p.push(out.addr()).push(n);
    e.launch("bk", barrierKernel, simt::Dim3(ctas), simt::Dim3(64),
             64 * 4, p);
    simt::KernelParams p2;
    p2.push(buf.addr());
    e.launch("chain", chainKernel, simt::Dim3(2), simt::Dim3(64), 0,
             p2);
}

std::string
tmpReplayPath(const char *tag)
{
    return testing::TempDir() + "gwc_replay_" + tag + ".trace";
}

/** Profile CSV for one finalized collector, as a string. */
std::string
profileCsv(std::vector<metrics::KernelProfile> rows)
{
    std::ostringstream os;
    metrics::writeProfilesCsv(os, rows);
    return os.str();
}

/** Rendered hotspot tables for one finalized collector. */
std::string
hotspotText(std::vector<metrics::KernelHotspots> tables)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &ks : tables) {
        if (!first)
            os << "\n";
        first = false;
        metrics::renderHotspots(os, ks, 0);
    }
    return os.str();
}

// ------------------------------------------------------------- identity

/**
 * The tentpole property: for every chunk-size regime and jobs count,
 * a Profiler and a HotspotProfiler fed from the corpus emit output
 * byte-identical to the hooks that watched the live engine.
 */
TEST(Replay, CollectorsByteIdenticalToLiveRun)
{
    struct Regime
    {
        const char *name;
        uint64_t chunkEvents;
    };
    // chunkEvents = 1 cuts at every CTA end (one CTA block per
    // chunk); the huge value never cuts (one chunk per kernel).
    const Regime regimes[] = {
        {"cta", 1}, {"default", 8192}, {"giant", ~0ull >> 1}};

    for (const Regime &reg : regimes) {
        std::string path = tmpReplayPath(reg.name);
        metrics::Profiler liveProf;
        metrics::HotspotProfiler liveHot;
        {
            TraceWriter::Config cfg;
            cfg.chunkEvents = reg.chunkEvents;
            TraceWriter w(path, cfg);
            runBoth({&liveProf, &liveHot, &w});
            w.close();
        }
        std::string liveCsv = profileCsv(liveProf.finalize("wl"));
        std::string liveTables = hotspotText(liveHot.finalize("wl"));

        TraceReader r(path);
        TraceReplayer rep(r);
        for (unsigned jobs : {1u, 4u}) {
            ReplayOptions opts;
            opts.jobs = jobs;
            metrics::Profiler prof;
            rep.replay(prof, opts);
            EXPECT_EQ(profileCsv(prof.finalize("wl")), liveCsv)
                << reg.name << " jobs=" << jobs;
            metrics::HotspotProfiler hot;
            rep.replay(hot, opts);
            EXPECT_EQ(hotspotText(hot.finalize("wl")), liveTables)
                << reg.name << " jobs=" << jobs;
        }
        std::remove(path.c_str());
    }
}

/**
 * Workload tags recorded via workloadBegin come back as segments, so
 * per-workload collectors finalize under their recorded abbrevs.
 */
TEST(Replay, WorkloadSegmentsRoundTrip)
{
    // One trace file spanning two workload tags, each recorded from
    // its own engine — exactly how the suite drives an extraHook.
    std::string path2 = tmpReplayPath("segments");
    metrics::Profiler liveA2, liveB2;
    {
        TraceWriter w(path2);
        {
            simt::Engine e;
            auto buf = e.alloc<uint32_t>(2 * 64);
            simt::KernelParams p;
            p.push(buf.addr());
            w.workloadBegin("AA");
            e.addHook(&liveA2);
            e.addHook(&w);
            e.launch("chain", chainKernel, simt::Dim3(2),
                     simt::Dim3(64), 0, p);
        }
        {
            simt::Engine e;
            const uint32_t n = 3 * 64 - 10;
            auto out = e.alloc<uint32_t>(3 * 64);
            simt::KernelParams p;
            p.push(out.addr()).push(n);
            w.workloadBegin("BB");
            e.addHook(&liveB2);
            e.addHook(&w);
            e.launch("bk", barrierKernel, simt::Dim3(3),
                     simt::Dim3(64), 64 * 4, p);
        }
        w.close();
    }
    std::string liveCsv = profileCsv(liveA2.finalize("AA")) +
                          profileCsv(liveB2.finalize("BB"));

    TraceReader r(path2);
    auto segs = workloadSegments(r.index());
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].workload, "AA");
    EXPECT_EQ(segs[1].workload, "BB");
    EXPECT_EQ(segs[0].firstLaunch, 0u);
    EXPECT_EQ(segs[0].lastLaunch, 1u);
    EXPECT_EQ(segs[1].lastLaunch, 2u);

    TraceReplayer rep(r);
    std::string replayedCsv;
    for (const auto &seg : segs) {
        metrics::Profiler prof;
        rep.replayRange(seg.firstLaunch, seg.lastLaunch, prof, {});
        replayedCsv += profileCsv(prof.finalize(seg.workload));
    }
    EXPECT_EQ(replayedCsv, liveCsv);
    std::remove(path2.c_str());
}

// ----------------------------------------------------- indexed seeking

/**
 * A kernel filter must decode only that kernel's chunks — the
 * acceptance criterion for index-driven seeking.
 */
TEST(Replay, KernelFilterDecodesOnlyMatchingChunks)
{
    std::string path = tmpReplayPath("seek");
    {
        TraceWriter::Config cfg;
        cfg.chunkEvents = 1; // one CTA block per chunk
        TraceWriter w(path, cfg);
        runBoth({&w});
        w.close();
    }

    TraceReader r(path);
    const TraceIndex &idx = r.index();
    ASSERT_EQ(idx.launches.size(), 2u);
    size_t bkChunks = 0, chainChunks = 0;
    for (const auto &c : idx.chunks)
        (idx.launches[c.launchIdx].info.name == "bk" ? bkChunks
                                                     : chainChunks)++;
    ASSERT_EQ(bkChunks, 3u);    // 3 CTA blocks
    ASSERT_EQ(chainChunks, 2u); // 2 CTA blocks

    TraceReplayer rep(r);
    ReplayOptions opts;
    opts.kernel = "chain";
    metrics::Profiler prof;
    ReplayStats st = rep.replay(prof, opts);
    EXPECT_EQ(st.launches, 1u);
    EXPECT_EQ(st.launchesSkipped, 1u);
    EXPECT_EQ(st.chunksDecoded, chainChunks);
    EXPECT_EQ(st.chunksSkipped, bkChunks);
    // The reader's own counters agree: nothing else touched disk.
    EXPECT_EQ(r.chunksDecoded(), chainChunks);

    auto rows = prof.finalize("wl");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].kernel, "chain");
    std::remove(path.c_str());
}

/** A CTA range decodes only chunks overlapping the range. */
TEST(Replay, CtaRangeFilterSkipsChunksViaIndex)
{
    std::string path = tmpReplayPath("ctarange");
    {
        TraceWriter::Config cfg;
        cfg.chunkEvents = 1;
        TraceWriter w(path, cfg);
        runBoth({&w}, 4); // bk: 4 CTA blocks -> 4 chunks
        w.close();
    }

    TraceReader r(path);
    TraceReplayer rep(r);
    ReplayOptions opts;
    opts.kernel = "bk";
    opts.ctaFirst = 1;
    opts.ctaLast = 2;
    metrics::Profiler prof;
    ReplayStats st = rep.replay(prof, opts);
    EXPECT_EQ(st.launches, 1u);
    EXPECT_EQ(st.chunksDecoded, 2u); // CTAs 1 and 2 only
    EXPECT_EQ(st.counts.ctaBegins, 2u);
    EXPECT_EQ(st.counts.ctaEnds, 2u);
    EXPECT_EQ(r.chunksDecoded(), 2u);
    std::remove(path.c_str());
}

/** Replaying a legacy flat trace through the replayer is refused. */
TEST(Replay, RejectsNonChunkedTrace)
{
    std::string path = tmpReplayPath("v2");
    {
        TraceWriter::Config cfg;
        cfg.format = kTraceVersionV2;
        TraceWriter w(path, cfg);
        runBoth({&w});
        w.close();
    }
    TraceReader r(path);
    EXPECT_FALSE(r.chunked());
    EXPECT_THROW(TraceReplayer rep(r), Error);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace gwc
