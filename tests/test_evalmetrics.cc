/**
 * @file
 * Unit tests for the design-space evaluation metrics.
 */

#include <gtest/gtest.h>

#include "evalmetrics/evalmetrics.hh"

namespace gwc::evalmetrics
{
namespace
{

using stats::Matrix;

TEST(SubsetEstimate, PerfectClustersGiveExactEstimate)
{
    // 2 configs x 4 kernels; kernels 0,1 identical and 2,3 identical.
    Matrix sp = Matrix::fromRows({{1.0, 1.0, 2.0, 2.0},
                                  {3.0, 3.0, 1.0, 1.0}});
    std::vector<int> labels{0, 0, 1, 1};
    std::vector<uint32_t> reps{0, 2};
    auto est = subsetEstimate(sp, labels, reps);
    auto truth = suiteMeans(sp);
    EXPECT_DOUBLE_EQ(est[0], truth[0]);
    EXPECT_DOUBLE_EQ(est[1], truth[1]);
    EXPECT_DOUBLE_EQ(meanAbsRelError(est, truth), 0.0);
}

TEST(SubsetEstimate, WeightsReflectClusterSizes)
{
    // Cluster 0 has 3 kernels, cluster 1 has 1.
    Matrix sp = Matrix::fromRows({{2.0, 2.0, 2.0, 10.0}});
    std::vector<int> labels{0, 0, 0, 1};
    std::vector<uint32_t> reps{0, 3};
    auto est = subsetEstimate(sp, labels, reps);
    EXPECT_DOUBLE_EQ(est[0], 0.75 * 2.0 + 0.25 * 10.0);
}

TEST(SuiteMeans, Basic)
{
    Matrix sp = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    auto m = suiteMeans(sp);
    EXPECT_DOUBLE_EQ(m[0], 2.0);
    EXPECT_DOUBLE_EQ(m[1], 5.0);
}

TEST(MeanAbsRelError, KnownValues)
{
    EXPECT_DOUBLE_EQ(meanAbsRelError({1.1, 0.9}, {1.0, 1.0}), 0.1);
    EXPECT_DOUBLE_EQ(meanAbsRelError({2.0}, {2.0}), 0.0);
}

TEST(RandomSubset, FullSubsetHasZeroError)
{
    Matrix sp = Matrix::fromRows({{1, 2, 3, 4}, {2, 2, 2, 2}});
    Rng rng(1);
    EXPECT_NEAR(randomSubsetError(sp, 4, 10, rng), 0.0, 1e-12);
}

TEST(RandomSubset, SmallSubsetsErrMore)
{
    // Heterogeneous speedups: single-kernel subsets are bad.
    std::vector<std::vector<double>> rows;
    Rng gen(7);
    for (int cfg = 0; cfg < 4; ++cfg) {
        std::vector<double> r;
        for (int k = 0; k < 12; ++k)
            r.push_back(0.5 + gen.nextDouble() * 2.0);
        rows.push_back(r);
    }
    Matrix sp = Matrix::fromRows(rows);
    Rng rng(3);
    double e1 = randomSubsetError(sp, 1, 200, rng);
    double e6 = randomSubsetError(sp, 6, 200, rng);
    EXPECT_GT(e1, e6);
}

TEST(StressRanking, OutlierRanksFirst)
{
    // 4 kernels x full metric vector; kernel 2 is extreme in the
    // divergence subspace.
    Matrix m(4, metrics::kNumCharacteristics);
    for (size_t r = 0; r < 4; ++r) {
        m(r, metrics::kDivBranchFrac) = 0.1;
        m(r, metrics::kSimdActivity) = 0.9;
        m(r, metrics::kDivPerKiloInstr) = 5.0;
    }
    m(2, metrics::kDivBranchFrac) = 0.9;
    m(2, metrics::kSimdActivity) = 0.2;
    m(2, metrics::kDivPerKiloInstr) = 200.0;

    auto rank = stressRanking(m, metrics::Subspace::Divergence);
    ASSERT_EQ(rank.size(), 4u);
    EXPECT_EQ(rank[0].kernel, 2u);
    EXPECT_GT(rank[0].score, rank[1].score);
}

TEST(Diversity, IdenticalKernelsScoreZero)
{
    Matrix m(3, metrics::kNumCharacteristics);
    for (size_t r = 0; r < 3; ++r)
        for (uint32_t c = 0; c < metrics::kNumCharacteristics; ++c)
            m(r, c) = 0.5;
    EXPECT_DOUBLE_EQ(
        subspaceDiversity(m, metrics::Subspace::Coalescing), 0.0);
}

TEST(Diversity, SpreadIncreasesScore)
{
    Matrix tight(4, metrics::kNumCharacteristics);
    Matrix wide(4, metrics::kNumCharacteristics);
    for (size_t r = 0; r < 4; ++r) {
        tight(r, metrics::kTxPerGmemAccess) = 1.0 + 0.01 * double(r);
        tight(r, metrics::kCoalescingEff) = 0.9;
        wide(r, metrics::kTxPerGmemAccess) = 1.0 + 10.0 * double(r);
        wide(r, metrics::kCoalescingEff) = 0.1 + 0.25 * double(r);
    }
    // Z-scoring normalizes scale, so add a second varying dimension
    // only to 'wide' and keep 'tight' constant in it.
    double dTight =
        subspaceDiversity(tight, metrics::Subspace::Coalescing);
    double dWide =
        subspaceDiversity(wide, metrics::Subspace::Coalescing);
    EXPECT_GT(dWide, dTight);
}

TEST(Diversity, PerKernelMatchesOutlier)
{
    Matrix m(3, metrics::kNumCharacteristics);
    m(0, metrics::kTxPerGmemAccess) = 1.0;
    m(1, metrics::kTxPerGmemAccess) = 1.1;
    m(2, metrics::kTxPerGmemAccess) = 30.0;
    auto d = perKernelDiversity(m, metrics::Subspace::Coalescing);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_GT(d[2], d[0]);
    EXPECT_GT(d[2], d[1]);
}

} // anonymous namespace
} // namespace gwc::evalmetrics
