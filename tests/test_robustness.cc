/**
 * @file
 * Tests of the fault-isolated suite runtime: the execution guard,
 * deterministic fault injection across every kind and jobs level,
 * keep-going vs fail-fast, bounded retry of transient failures, the
 * failures stats group, the Session facade's failure reporting, and
 * the byte-identity of surviving workloads' profiles.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/profile_io.hh"
#include "runtime/guard.hh"
#include "runtime/inject.hh"
#include "runtime/session.hh"
#include "telemetry/stats.hh"
#include "workloads/suite.hh"

namespace gwc
{
namespace
{

using workloads::SuiteOptions;
using workloads::WorkloadRun;

/** Profiles of @p runs rendered to CSV (the tool's on-disk bytes). */
std::string
csvOf(const std::vector<WorkloadRun> &runs)
{
    std::ostringstream os;
    metrics::writeProfilesCsv(os, workloads::allProfiles(runs));
    return os.str();
}

/** CSV of @p runs with the rows of workload @p skip removed. */
std::string
csvWithout(const std::vector<WorkloadRun> &runs,
           const std::string &skip)
{
    std::vector<WorkloadRun> kept;
    for (const auto &r : runs)
        if (r.desc.abbrev != skip)
            kept.push_back(r);
    return csvOf(kept);
}

// ---------------------------------------------------------------------
// Execution guard
// ---------------------------------------------------------------------

TEST(Guard, SuccessIsSingleAttempt)
{
    auto out = runtime::runGuarded({}, {}, [](runtime::CancelToken &) {});
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_FALSE(out.recovered());
    EXPECT_TRUE(out.attemptErrors.empty());
}

TEST(Guard, CapturesTypedAndForeignExceptions)
{
    auto typed = runtime::runGuarded({}, {}, [](runtime::CancelToken &) {
        raise(ErrorCode::VerifyMismatch, "wrong answer");
    });
    EXPECT_EQ(typed.status.code(), ErrorCode::VerifyMismatch);

    auto foreign =
        runtime::runGuarded({}, {}, [](runtime::CancelToken &) {
            throw std::runtime_error("boom");
        });
    EXPECT_EQ(foreign.status.code(), ErrorCode::Internal);
    EXPECT_NE(foreign.status.message().find("boom"),
              std::string::npos);
}

TEST(Guard, RetriesOnlyTransientFailures)
{
    runtime::RetryPolicy retry;
    retry.maxRetries = 2;
    retry.backoffSec = 0.0;

    std::atomic<int> calls{0};
    auto recovered = runtime::runGuarded(
        {}, retry, [&calls](runtime::CancelToken &) {
            if (++calls == 1)
                raise(ErrorCode::ResourceExhausted, "try again");
        });
    EXPECT_TRUE(recovered.ok());
    EXPECT_TRUE(recovered.recovered());
    EXPECT_EQ(recovered.attempts, 2u);
    ASSERT_EQ(recovered.attemptErrors.size(), 1u);
    EXPECT_EQ(recovered.attemptErrors[0].code(),
              ErrorCode::ResourceExhausted);

    calls = 0;
    auto deterministic = runtime::runGuarded(
        {}, retry, [&calls](runtime::CancelToken &) {
            ++calls;
            raise(ErrorCode::VerifyMismatch, "always wrong");
        });
    EXPECT_FALSE(deterministic.ok());
    EXPECT_EQ(calls.load(), 1) << "non-transient faults never retry";

    calls = 0;
    auto exhausted = runtime::runGuarded(
        {}, retry, [&calls](runtime::CancelToken &) {
            ++calls;
            raise(ErrorCode::ResourceExhausted, "never recovers");
        });
    EXPECT_FALSE(exhausted.ok());
    EXPECT_EQ(exhausted.attempts, 3u);
    EXPECT_EQ(calls.load(), 3);
}

TEST(Guard, TimeoutLimitArmsTheToken)
{
    runtime::GuardLimits limits;
    limits.timeoutSec = 1e-9;
    auto out = runtime::runGuarded(
        limits, {}, [](runtime::CancelToken &token) {
            // A cooperative check point after the deadline passed.
            while (!token.stopRequested()) {
            }
            token.throwIfStopped();
        });
    EXPECT_EQ(out.status.code(), ErrorCode::Timeout);
}

// ---------------------------------------------------------------------
// Injection plan parsing
// ---------------------------------------------------------------------

TEST(Inject, ParsesSpecsAndCounts)
{
    runtime::InjectionPlan plan;
    EXPECT_TRUE(plan.addSpecs("").ok());
    EXPECT_TRUE(plan.empty());
    EXPECT_TRUE(
        plan.addSpecs("alloc-fail@BLS:2,timeout@MUM").ok());
    EXPECT_FALSE(plan.empty());

    // Arming consumes counts deterministically.
    EXPECT_TRUE(plan.arm(runtime::InjectKind::AllocFail, "BLS"));
    EXPECT_TRUE(plan.arm(runtime::InjectKind::AllocFail, "BLS"));
    EXPECT_FALSE(plan.arm(runtime::InjectKind::AllocFail, "BLS"));
    EXPECT_FALSE(plan.arm(runtime::InjectKind::Timeout, "BLS"));
    EXPECT_TRUE(plan.arm(runtime::InjectKind::Timeout, "MUM"));
    EXPECT_TRUE(plan.remaining().empty());
}

TEST(Inject, RejectsMalformedSpecs)
{
    runtime::InjectionPlan plan;
    for (const char *bad :
         {"frobnicate@BLS", "alloc-fail", "alloc-fail@", "oom@BLS:0",
          "oom@BLS:x", "@BLS"}) {
        Status st = plan.addSpec(bad);
        EXPECT_EQ(st.code(), ErrorCode::InvalidArgument) << bad;
    }
}

// ---------------------------------------------------------------------
// Fault-isolated suite runs: every kind x jobs {1, 4}
// ---------------------------------------------------------------------

struct InjectCase
{
    const char *spec;         ///< --inject value targeting MUM
    ErrorCode expectCode;     ///< status of the failed run
};

class InjectMatrix
    : public ::testing::TestWithParam<std::tuple<InjectCase, uint32_t>>
{};

TEST_P(InjectMatrix, OneFailureDoesNotPoisonTheSuite)
{
    const auto &[c, jobs] = GetParam();

    SuiteOptions clean;
    clean.jobs = jobs;
    auto cleanRuns = workloads::runSuite({}, clean);
    EXPECT_EQ(workloads::suiteExitCode(cleanRuns), 0);

    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec(c.spec).ok());
    SuiteOptions opts;
    opts.jobs = jobs;
    opts.inject = &plan;
    auto runs = workloads::runSuite({}, opts);

    ASSERT_EQ(runs.size(), cleanRuns.size());
    for (const auto &run : runs) {
        if (run.desc.abbrev == "MUM") {
            EXPECT_TRUE(run.failed());
            EXPECT_EQ(run.status.code(), c.expectCode) << c.spec;
            EXPECT_FALSE(run.failedPhase.empty());
            EXPECT_TRUE(run.profiles.empty())
                << "failed runs must not leak partial profiles";
        } else {
            EXPECT_TRUE(run.verified) << run.desc.abbrev;
            EXPECT_FALSE(run.profiles.empty()) << run.desc.abbrev;
        }
    }

    // Exit-code contract and the failure record.
    EXPECT_EQ(workloads::suiteExitCode(runs), 2);
    auto failures = workloads::suiteFailures(runs);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].workload, "MUM");
    EXPECT_EQ(failures[0].status.code(), c.expectCode);

    // The surviving workloads' bytes are identical to a clean run
    // that never included the failure.
    EXPECT_EQ(csvOf(runs), csvWithout(cleanRuns, "MUM")) << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    KindsByJobs, InjectMatrix,
    ::testing::Combine(
        ::testing::Values(
            InjectCase{"alloc-fail@MUM", ErrorCode::ResourceExhausted},
            InjectCase{"verify-mismatch@MUM",
                       ErrorCode::VerifyMismatch},
            InjectCase{"hook-throw@MUM", ErrorCode::Internal},
            InjectCase{"timeout@MUM", ErrorCode::Timeout},
            InjectCase{"oom@MUM", ErrorCode::OutOfMemory}),
        ::testing::Values(1u, 4u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param).spec;
        name = name.substr(0, name.find('@'));
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name + "_jobs" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Keep-going vs fail-fast, retry recovery, failure stats
// ---------------------------------------------------------------------

TEST(Robustness, FailFastRethrowsTheFirstFailure)
{
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("verify-mismatch@BLS").ok());
    SuiteOptions opts;
    opts.keepGoing = false;
    opts.inject = &plan;
    try {
        workloads::runSuite({"BLS", "RD"}, opts);
        FAIL() << "expected gwc::Error";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::VerifyMismatch);
        EXPECT_NE(std::string(e.what()).find("BLS"),
                  std::string::npos);
    }
}

TEST(Robustness, RetryRecoversInjectedAllocFailure)
{
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("alloc-fail@BLS").ok());
    telemetry::Registry reg;
    SuiteOptions opts;
    opts.inject = &plan;
    opts.stats = &reg;
    opts.retry.maxRetries = 1;
    opts.retry.backoffSec = 0.0;
    auto runs = workloads::runSuite({"BLS"}, opts);

    ASSERT_EQ(runs.size(), 1u);
    EXPECT_FALSE(runs[0].failed());
    EXPECT_TRUE(runs[0].verified);
    EXPECT_EQ(runs[0].attempts, 2u);
    EXPECT_EQ(workloads::suiteExitCode(runs), 0);
    EXPECT_EQ(reg.counterTotal("failures", "retries"), 1u);
    EXPECT_EQ(reg.counterTotal("failures", "total"), 0u);
}

TEST(Robustness, AllocFailureWithoutRetriesFails)
{
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("alloc-fail@BLS").ok());
    SuiteOptions opts;
    opts.inject = &plan;
    auto runs = workloads::runSuite({"BLS"}, opts);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].status.code(), ErrorCode::ResourceExhausted);
    EXPECT_EQ(workloads::suiteExitCode(runs), 2);
}

TEST(Robustness, CleanRunStatsHaveNoFailuresGroup)
{
    telemetry::Registry reg;
    SuiteOptions opts;
    opts.stats = &reg;
    auto runs = workloads::runSuite({"BLS"}, opts);
    EXPECT_FALSE(runs[0].failed());
    EXPECT_EQ(reg.find("failures"), nullptr)
        << "clean runs must not grow a failures group";
}

TEST(Robustness, FailureStatsCountPerErrorCode)
{
    runtime::InjectionPlan plan;
    ASSERT_TRUE(plan.addSpec("oom@BLS").ok());
    telemetry::Registry reg;
    SuiteOptions opts;
    opts.inject = &plan;
    opts.stats = &reg;
    auto runs = workloads::runSuite({"BLS", "RD"}, opts);
    EXPECT_EQ(workloads::suiteExitCode(runs), 2);
    EXPECT_EQ(reg.counterTotal("failures", "total"), 1u);
    EXPECT_EQ(reg.counterTotal("failures", "out_of_memory"), 1u);
}

TEST(Robustness, MemBudgetLimitTripsOom)
{
    SuiteOptions opts;
    opts.limits.memBudgetBytes = 1024;
    auto runs = workloads::runSuite({"BLS"}, opts);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].status.code(), ErrorCode::OutOfMemory);
    EXPECT_EQ(runs[0].failedPhase, "setup");
}

// ---------------------------------------------------------------------
// Session facade
// ---------------------------------------------------------------------

TEST(Session, ReportsFailuresAndExitCode)
{
    runtime::SessionOptions so;
    so.injectSpecs = "hook-throw@MUM";
    runtime::Session session(std::move(so));
    session.runSuite({"BLS", "MUM"});

    EXPECT_EQ(session.exitCode(), 2);
    auto failures = session.failures();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].workload, "MUM");

    const auto &rows = session.report().workloads;
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].status, "ok");
    EXPECT_EQ(rows[1].status, "failed");
    EXPECT_EQ(rows[1].errorCode, "internal");
    EXPECT_EQ(rows[1].failedPhase, "simulate");
    EXPECT_FALSE(rows[1].errorMessage.empty());
    EXPECT_EQ(session.finish(), 2);
}

TEST(Session, RejectsMalformedInjectSpecs)
{
    runtime::SessionOptions so;
    so.injectSpecs = "not-a-kind@BLS";
    try {
        runtime::Session session(std::move(so));
        FAIL() << "expected gwc::Error";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
    }
}

TEST(Session, CleanRunFinishesZero)
{
    runtime::SessionOptions so;
    runtime::Session session(std::move(so));
    auto &runs = session.runSuite({"BLS"});
    EXPECT_EQ(runs.size(), 1u);
    EXPECT_EQ(session.exitCode(), 0);
    EXPECT_EQ(session.finish(), 0);
    EXPECT_EQ(session.finish(), 0) << "finish() is idempotent";
}

} // anonymous namespace
} // namespace gwc
