/**
 * @file
 * Unit tests for the statistics module: matrix primitives, z-score
 * normalization, correlation, the Jacobi eigensolver and PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/pca.hh"

namespace gwc::stats
{
namespace
{

TEST(Matrix, BasicOps)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);

    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_DOUBLE_EQ(t(1, 2), 6.0);

    Matrix p = t.multiply(m); // 2x2 = M^T M
    EXPECT_DOUBLE_EQ(p(0, 0), 1 + 9 + 25);
    EXPECT_DOUBLE_EQ(p(0, 1), 2 + 12 + 30);
    EXPECT_DOUBLE_EQ(p(1, 1), 4 + 16 + 36);
}

TEST(Matrix, Identity)
{
    Matrix i = Matrix::identity(3);
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
    Matrix p = i.multiply(m);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(p(r, c), m(r, c));
}

TEST(Matrix, SelectColumns)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix s = m.selectColumns({2, 0});
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, Distances)
{
    Matrix m = Matrix::fromRows({{0, 0}, {3, 4}});
    EXPECT_DOUBLE_EQ(rowDistance(m, 0, 1), 5.0);
    Matrix d = pairwiseDistances(m);
    EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Zscore, NormalizesMoments)
{
    Matrix m = Matrix::fromRows({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
    Matrix z = zscore(m);
    for (size_t c = 0; c < 2; ++c) {
        double mu = 0, var = 0;
        for (size_t r = 0; r < 4; ++r)
            mu += z(r, c);
        mu /= 4;
        for (size_t r = 0; r < 4; ++r)
            var += (z(r, c) - mu) * (z(r, c) - mu);
        var /= 4;
        EXPECT_NEAR(mu, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(Zscore, ConstantColumnIsZero)
{
    Matrix m = Matrix::fromRows({{5, 1}, {5, 2}, {5, 3}});
    std::vector<double> mu, sd;
    Matrix z = zscore(m, &mu, &sd);
    for (size_t r = 0; r < 3; ++r)
        EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
    EXPECT_DOUBLE_EQ(mu[0], 5.0);
    EXPECT_DOUBLE_EQ(sd[0], 0.0);
}

TEST(Correlation, PerfectAndAnti)
{
    // col1 = col0 scaled; col2 = -col0.
    Matrix m = Matrix::fromRows(
        {{1, 2, -1}, {2, 4, -2}, {3, 6, -3}, {4, 8, -4}});
    Matrix c = correlationMatrix(m);
    EXPECT_NEAR(c(0, 1), 1.0, 1e-12);
    EXPECT_NEAR(c(0, 2), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
}

TEST(Correlation, IndependentColumnsNearZero)
{
    Rng rng(99);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 2000; ++i)
        rows.push_back({rng.nextDouble(), rng.nextDouble()});
    Matrix c = correlationMatrix(Matrix::fromRows(rows));
    EXPECT_NEAR(c(0, 1), 0.0, 0.05);
}

TEST(Jacobi, DiagonalMatrix)
{
    Matrix a = Matrix::fromRows({{3, 0}, {0, 7}});
    std::vector<double> ev;
    Matrix vec;
    jacobiEigen(a, ev, vec);
    EXPECT_NEAR(ev[0], 7.0, 1e-12);
    EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(Jacobi, Known2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
    // (1,1)/sqrt2 and (1,-1)/sqrt2.
    Matrix a = Matrix::fromRows({{2, 1}, {1, 2}});
    std::vector<double> ev;
    Matrix vec;
    jacobiEigen(a, ev, vec);
    EXPECT_NEAR(ev[0], 3.0, 1e-12);
    EXPECT_NEAR(ev[1], 1.0, 1e-12);
    EXPECT_NEAR(std::fabs(vec(0, 0)), 1 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(std::fabs(vec(1, 0)), 1 / std::sqrt(2.0), 1e-9);
}

TEST(Jacobi, ReconstructsMatrix)
{
    // A = V diag(ev) V^T must reproduce the input.
    Rng rng(5);
    const size_t n = 8;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            double v = rng.nextDouble() * 2 - 1;
            a(i, j) = v;
            a(j, i) = v;
        }
    std::vector<double> ev;
    Matrix vec;
    jacobiEigen(a, ev, vec);

    Matrix d(n, n);
    for (size_t i = 0; i < n; ++i)
        d(i, i) = ev[i];
    Matrix rec = vec.multiply(d).multiply(vec.transposed());
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
}

TEST(Jacobi, EigenvectorsOrthonormal)
{
    Rng rng(17);
    const size_t n = 10;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            double v = rng.nextDouble();
            a(i, j) = v;
            a(j, i) = v;
        }
    std::vector<double> ev;
    Matrix vec;
    jacobiEigen(a, ev, vec);
    Matrix vtv = vec.transposed().multiply(vec);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Pca, CorrelatedPairCollapsesToOnePc)
{
    // Two perfectly correlated dimensions + noise dim: PC1 should
    // absorb the correlated pair (eigenvalue ~2).
    Rng rng(3);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 500; ++i) {
        double x = rng.nextGaussian();
        rows.push_back({x, 2 * x + 1, rng.nextGaussian()});
    }
    PcaResult r = pca(Matrix::fromRows(rows));
    EXPECT_NEAR(r.eigenvalues[0], 2.0, 0.15);
    EXPECT_NEAR(r.eigenvalues[2], 0.0, 0.05);
    EXPECT_NEAR(r.varExplained[0], 2.0 / 3.0, 0.05);
    // Two PCs cover everything.
    EXPECT_LE(r.numPcsFor(0.99), 2u);
}

TEST(Pca, VarianceFractionsSumToOne)
{
    Rng rng(8);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 100; ++i)
        rows.push_back({rng.nextDouble(), rng.nextDouble(),
                        rng.nextDouble(), rng.nextDouble()});
    PcaResult r = pca(Matrix::fromRows(rows));
    double sum = 0;
    for (double v : r.varExplained)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Eigenvalues descending.
    for (size_t i = 1; i < r.eigenvalues.size(); ++i)
        EXPECT_GE(r.eigenvalues[i - 1], r.eigenvalues[i]);
}

TEST(Pca, ScoresAreDecorrelated)
{
    Rng rng(12);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 400; ++i) {
        double a = rng.nextGaussian(), b = rng.nextGaussian();
        rows.push_back({a + b, a - b, 0.5 * a});
    }
    PcaResult r = pca(Matrix::fromRows(rows));
    // Covariance of scores must be diagonal (eigenvalues).
    size_t n = r.scores.rows();
    for (size_t c1 = 0; c1 < 3; ++c1) {
        for (size_t c2 = c1 + 1; c2 < 3; ++c2) {
            double s = 0;
            for (size_t row = 0; row < n; ++row)
                s += r.scores(row, c1) * r.scores(row, c2);
            EXPECT_NEAR(s / n, 0.0, 1e-9);
        }
    }
}

TEST(Pca, ConstantColumnHandled)
{
    Matrix m =
        Matrix::fromRows({{1, 7, 2}, {2, 7, 1}, {3, 7, 5}, {4, 7, 3}});
    PcaResult r = pca(m);
    for (double ev : r.eigenvalues)
        EXPECT_TRUE(std::isfinite(ev));
    EXPECT_GE(r.eigenvalues[0], 1.0);
}

TEST(Pca, TruncatedScores)
{
    Matrix m = Matrix::fromRows(
        {{1, 2, 3}, {4, 5, 6}, {7, 8, 10}, {1, 0, 2}});
    PcaResult r = pca(m);
    Matrix t = r.truncatedScores(2);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.rows(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(t(i, 0), r.scores(i, 0));
}

} // anonymous namespace
} // namespace gwc::stats
