/**
 * @file
 * Unit tests for the common utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/varint.hh"

namespace gwc
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, FloatRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, FloatCoversRange)
{
    Rng r(11);
    bool low = false, high = false;
    for (int i = 0; i < 10000; ++i) {
        float f = r.nextFloat();
        low = low || f < 0.1f;
        high = high || f > 0.9f;
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
}

TEST(Rng, BelowBound)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(5);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(r.nextGaussian());
    EXPECT_NEAR(mean(xs), 0.0, 0.05);
    EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 32), 1u);
    EXPECT_EQ(ceilDiv(0, 32), 0u);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

TEST(MathUtil, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(nextPow2(64), 64u);
}

TEST(MathUtil, MeanStddev)
{
    std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(MathUtil, NearlyEqual)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-6));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1));
    EXPECT_TRUE(nearlyEqual(0.0, 1e-7));
}

TEST(Table, AlignedOutput)
{
    Table t({"a", "longheader"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("longheader"), std::string::npos);
    EXPECT_NE(s.find("yyyy"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Csv)
{
    Table t({"k", "v"});
    t.addRow({"a", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "k,v\na,1\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
    EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(Table, RowSizeMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "table row");
}

TEST(Logging, Strfmt)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Varint, UnsignedRoundTrip)
{
    std::vector<uint64_t> vals = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  (1ull << 14) - 1,
                                  1ull << 14,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  ~0ull};
    std::vector<uint8_t> buf;
    for (uint64_t v : vals)
        putVarU64(buf, v);
    // One byte per 7 payload bits: the boundary values pin widths.
    EXPECT_EQ(buf[0], 0u);          // 0 is one byte
    VarCursor c(buf.data(), buf.data() + buf.size());
    for (uint64_t v : vals)
        EXPECT_EQ(c.u64(), v);
    EXPECT_TRUE(c.atEnd());
    EXPECT_FALSE(c.fail());
}

TEST(Varint, ZigzagRoundTrip)
{
    std::vector<int64_t> vals = {0,  -1, 1,          -2,        2,
                                 63, 64, -65,        INT32_MIN, INT32_MAX,
                                 INT64_MIN, INT64_MAX};
    EXPECT_EQ(zigzag64(0), 0u);
    EXPECT_EQ(zigzag64(-1), 1u);
    EXPECT_EQ(zigzag64(1), 2u);
    std::vector<uint8_t> buf;
    for (int64_t v : vals)
        putVarI64(buf, v);
    VarCursor c(buf.data(), buf.data() + buf.size());
    for (int64_t v : vals)
        EXPECT_EQ(c.i64(), v);
    EXPECT_TRUE(c.atEnd());
    // Small magnitudes stay small on the wire.
    std::vector<uint8_t> one;
    putVarI64(one, -3);
    EXPECT_EQ(one.size(), 1u);
}

TEST(Varint, CursorLatchesFailure)
{
    std::vector<uint8_t> buf;
    putVarU64(buf, 1u << 20); // three-byte varint
    buf.pop_back();           // truncate mid-value
    VarCursor c(buf.data(), buf.data() + buf.size());
    EXPECT_EQ(c.u64(), 0u);
    EXPECT_TRUE(c.fail());
    // All reads after a failure return zero and keep fail() set.
    EXPECT_EQ(c.byte(), 0u);
    EXPECT_EQ(c.i64(), 0);
    EXPECT_EQ(c.take(1), nullptr);
    EXPECT_TRUE(c.fail());

    VarCursor empty(nullptr, nullptr);
    EXPECT_TRUE(empty.atEnd());
    EXPECT_EQ(empty.byte(), 0u);
    EXPECT_TRUE(empty.fail());
}

TEST(Varint, TakeBoundsChecked)
{
    std::vector<uint8_t> buf = {1, 2, 3, 4};
    VarCursor c(buf.data(), buf.data() + buf.size());
    const uint8_t *p = c.take(3);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p[0], 1u);
    EXPECT_EQ(p[2], 3u);
    EXPECT_EQ(c.take(2), nullptr); // only one byte left
    EXPECT_TRUE(c.fail());
}

} // anonymous namespace
} // namespace gwc
