/**
 * @file
 * Unit tests for hierarchical clustering, k-means, BIC model
 * selection, silhouette and medoids.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"

namespace gwc::cluster
{
namespace
{

using stats::Matrix;

/** Three well-separated 2D blobs of 5 points each. */
Matrix
threeBlobs()
{
    std::vector<std::vector<double>> rows;
    Rng rng(123);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < 5; ++i)
            rows.push_back({centers[c][0] + rng.nextDouble() * 0.5,
                            centers[c][1] + rng.nextDouble() * 0.5});
    return Matrix::fromRows(rows);
}

/** True if rows of one blob share a label and blobs differ. */
bool
labelsMatchBlobs(const std::vector<int> &labels)
{
    for (int c = 0; c < 3; ++c)
        for (int i = 1; i < 5; ++i)
            if (labels[c * 5 + i] != labels[c * 5])
                return false;
    std::set<int> uniq(labels.begin(), labels.end());
    return uniq.size() == 3;
}

TEST(Hierarchical, RecoversBlobsAllLinkages)
{
    Matrix x = threeBlobs();
    for (Linkage l : {Linkage::Single, Linkage::Complete,
                      Linkage::Average, Linkage::Ward}) {
        Dendrogram d = agglomerate(x, l);
        EXPECT_EQ(d.merges().size(), 14u) << linkageName(l);
        auto labels = d.cut(3);
        EXPECT_TRUE(labelsMatchBlobs(labels)) << linkageName(l);
    }
}

TEST(Hierarchical, MergeDistancesMonotone)
{
    Matrix x = threeBlobs();
    for (Linkage l :
         {Linkage::Single, Linkage::Complete, Linkage::Average}) {
        Dendrogram d = agglomerate(x, l);
        for (size_t i = 1; i < d.merges().size(); ++i)
            EXPECT_GE(d.merges()[i].dist + 1e-12,
                      d.merges()[i - 1].dist)
                << linkageName(l);
    }
}

TEST(Hierarchical, CutExtremes)
{
    Matrix x = threeBlobs();
    Dendrogram d = agglomerate(x, Linkage::Average);
    auto one = d.cut(1);
    for (int l : one)
        EXPECT_EQ(l, 0);
    auto all = d.cut(15);
    std::set<int> uniq(all.begin(), all.end());
    EXPECT_EQ(uniq.size(), 15u);
}

TEST(Hierarchical, KnownTinyCase)
{
    // 1D points 0, 1, 10: first merge {0,1} at distance 1, then with
    // 10. Complete linkage: second merge at distance 10.
    Matrix x = Matrix::fromRows({{0}, {1}, {10}});
    Dendrogram d = agglomerate(x, Linkage::Complete);
    ASSERT_EQ(d.merges().size(), 2u);
    EXPECT_DOUBLE_EQ(d.merges()[0].dist, 1.0);
    EXPECT_DOUBLE_EQ(d.merges()[1].dist, 10.0);
    EXPECT_EQ(d.merges()[0].size, 2u);
    EXPECT_EQ(d.merges()[1].size, 3u);
    // Single linkage: second merge at distance 9.
    Dendrogram s = agglomerate(x, Linkage::Single);
    EXPECT_DOUBLE_EQ(s.merges()[1].dist, 9.0);
}

TEST(Hierarchical, CopheneticDistance)
{
    Matrix x = Matrix::fromRows({{0}, {1}, {10}});
    Dendrogram d = agglomerate(x, Linkage::Complete);
    EXPECT_DOUBLE_EQ(d.copheneticDistance(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(d.copheneticDistance(0, 2), 10.0);
    EXPECT_DOUBLE_EQ(d.copheneticDistance(2, 2), 0.0);
}

TEST(Hierarchical, RenderContainsAllLabels)
{
    Matrix x = threeBlobs();
    Dendrogram d = agglomerate(x, Linkage::Ward);
    std::vector<std::string> labels;
    for (int i = 0; i < 15; ++i)
        labels.push_back("leaf" + std::to_string(i));
    std::string out = d.render(labels);
    for (const auto &l : labels)
        EXPECT_NE(out.find(l), std::string::npos) << l;
    EXPECT_NE(out.find("d="), std::string::npos);
}

TEST(Kmeans, RecoversBlobs)
{
    Matrix x = threeBlobs();
    Rng rng(1);
    KmeansResult r = kmeans(x, 3, rng);
    EXPECT_TRUE(labelsMatchBlobs(r.labels));
    EXPECT_LT(r.inertia, 5.0);
    auto sizes = r.sizes();
    for (uint32_t s : sizes)
        EXPECT_EQ(s, 5u);
}

TEST(Kmeans, SingleClusterCentroidIsMean)
{
    Matrix x = Matrix::fromRows({{0, 0}, {2, 2}, {4, 4}});
    Rng rng(1);
    KmeansResult r = kmeans(x, 1, rng);
    EXPECT_DOUBLE_EQ(r.centroids(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(r.centroids(0, 1), 2.0);
}

TEST(Kmeans, KClampedToN)
{
    Matrix x = Matrix::fromRows({{0}, {5}});
    Rng rng(1);
    KmeansResult r = kmeans(x, 10, rng);
    EXPECT_EQ(r.k, 2u);
    EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(Kmeans, BicPrefersTrueK)
{
    Matrix x = threeBlobs();
    Rng rng(2);
    std::vector<double> bics;
    uint32_t k = selectKByBic(x, 6, rng, &bics);
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(bics.size(), 6u);
    EXPECT_GT(bics[2], bics[0]);
    EXPECT_GT(bics[2], bics[5]);
}

TEST(Kmeans, SilhouetteHighForSeparatedBlobs)
{
    Matrix x = threeBlobs();
    Rng rng(4);
    KmeansResult r = kmeans(x, 3, rng);
    EXPECT_GT(silhouette(x, r.labels), 0.8);
    // Degenerate k=1 labeling scores 0.
    std::vector<int> ones(x.rows(), 0);
    EXPECT_EQ(silhouette(x, ones), 0.0);
}

TEST(Kmeans, MedoidsAreClusterMembers)
{
    Matrix x = threeBlobs();
    Rng rng(6);
    KmeansResult r = kmeans(x, 3, rng);
    auto med = medoids(x, r.labels, 3);
    ASSERT_EQ(med.size(), 3u);
    std::set<int> clustersCovered;
    for (uint32_t m : med) {
        ASSERT_LT(m, x.rows());
        clustersCovered.insert(r.labels[m]);
    }
    EXPECT_EQ(clustersCovered.size(), 3u);
}

TEST(Kmeans, MedoidMinimizesIntraClusterDistance)
{
    // 1D cluster {0, 1, 2, 9}: medoid of a single cluster must be 1
    // or 2 (minimum summed distance is at 1: 1+0+1+8=10; at 2:
    // 2+1+0+7=10; tie broken by first index -> point 1).
    Matrix x = Matrix::fromRows({{0}, {1}, {2}, {9}});
    std::vector<int> labels{0, 0, 0, 0};
    auto med = medoids(x, labels, 1);
    EXPECT_EQ(med[0], 1u);
}

} // anonymous namespace
} // namespace gwc::cluster
