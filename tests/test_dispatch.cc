/**
 * @file
 * Tests of the batched event-dispatch layer: the staged HookList must
 * produce byte-identical profiles, hotspot tables, telemetry counters
 * and traces for ANY batch capacity, at any --jobs — the serial
 * per-event dispatch (capacity 1) is the baseline the batching
 * optimization is measured against.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/hotspots.hh"
#include "metrics/profile_io.hh"
#include "metrics/profiler.hh"
#include "simt/engine.hh"
#include "telemetry/stats.hh"
#include "telemetry/trace.hh"

namespace gwc
{
namespace
{

using simt::Dim3;
using simt::Engine;
using simt::KernelParams;
using simt::Reg;
using simt::Warp;
using simt::WarpTask;

// ---------------------------------------------------------------------
// Workloads: one perfectly coalesced, one exercising every event kind
// (divergence, strided gmem, conflicting smem, barriers).
// ---------------------------------------------------------------------

WarpTask
coalescedKernel(Warp &w)
{
    uint64_t x = w.param<uint64_t>(0);
    uint64_t y = w.param<uint64_t>(1);
    uint32_t n = w.param<uint32_t>(2);
    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<float> a = w.ldg<float>(x, i);
        Reg<float> b = w.ldg<float>(y, i);
        w.stg<float>(y, i, a * 2.0f + b);
    });
    co_return;
}

WarpTask
divergentKernel(Warp &w)
{
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<uint32_t> t = w.tidLinear();
    Reg<uint32_t> lane = w.laneId();

    // Bank-conflicted shared traffic + a barrier per CTA.
    w.stsE<uint32_t>(0, lane * 32u, i);
    co_await w.barrier();
    Reg<uint32_t> seed = w.ldsE<uint32_t>(0, lane * 32u);

    // Lane-dependent trip count: heavy divergence.
    Reg<uint32_t> acc = w.imm(0u);
    Reg<uint32_t> cnt = i % 7u;
    w.While([&] { return cnt > 0u; },
            [&] {
                acc = acc + cnt;
                cnt = cnt - 1u;
            });

    // Strided (uncoalesced) load, coalesced store.
    Reg<uint32_t> v = w.ldg<uint32_t>(in, t * 8u);
    w.stg<uint32_t>(out, i, acc + seed + v);
    co_return;
}

// ---------------------------------------------------------------------
// Run both workloads under profiler + hotspots and summarize every
// observable output into one comparable signature string.
// ---------------------------------------------------------------------

std::string
runSignature(size_t batch, unsigned jobs)
{
    Engine e;
    e.setJobs(jobs);
    e.setEventBatch(batch);
    telemetry::Registry reg;
    e.attachStats(reg);

    metrics::Profiler prof;
    prof.attachStats(reg);
    metrics::HotspotProfiler hot;
    e.addHook(&prof);
    e.addHook(&hot);

    {
        const uint32_t n = 2000;
        auto x = e.alloc<float>(2048);
        auto y = e.alloc<float>(2048);
        for (uint32_t i = 0; i < 2048; ++i) {
            x.set(i, float(i));
            y.set(i, 1.0f);
        }
        KernelParams p;
        p.push(x.addr()).push(y.addr()).push(n);
        e.launch("coal", coalescedKernel, Dim3(8), Dim3(256), 0, p);
    }
    {
        auto in = e.alloc<uint32_t>(2048 * 8);
        auto out = e.alloc<uint32_t>(2048);
        for (uint32_t i = 0; i < 2048 * 8; ++i)
            in.set(i, i * 7u);
        KernelParams p;
        p.push(in.addr()).push(out.addr());
        e.launch("divg", divergentKernel, Dim3(16), Dim3(128),
                 32 * 32 * 4, p);
    }
    e.clearHooks();

    std::ostringstream sig;
    metrics::writeProfilesCsv(sig, prof.finalize("DSP"));
    for (const auto &ks : hot.finalize("DSP"))
        metrics::renderHotspots(sig, ks, 0);
    for (const char *c : {"ev_kernel", "ev_cta", "ev_instr", "ev_mem",
                          "ev_branch", "ev_barrier", "ev_fanout",
                          "warp_instrs"})
        sig << c << '=' << reg.counterTotal("engine", c) << '\n';
    for (const char *c : {"instr_events", "mem_events", "ilp_warps",
                          "sampled_ctas"})
        sig << c << '=' << reg.counterTotal("profiler", c) << '\n';
    return sig.str();
}

TEST(BatchDispatch, OutputsIdenticalForAnyBatchAndJobs)
{
    // Baseline: per-event dispatch, serial execution.
    const std::string base = runSignature(1, 1);
    ASSERT_FALSE(base.empty());
    for (size_t batch : {size_t(1), size_t(7), size_t(64), size_t(4096)})
        for (unsigned jobs : {1u, 4u})
            EXPECT_EQ(base, runSignature(batch, jobs))
                << "batch=" << batch << " jobs=" << jobs;
}

// ---------------------------------------------------------------------
// Exact-order replay for non-batch-capable hooks.
// ---------------------------------------------------------------------

/** Order-sensitive recorder: stays on the per-event virtuals. */
class OrderLog : public simt::ProfilerHook
{
  public:
    std::vector<std::string> lines;

    void kernelBegin(const simt::KernelInfo &info) override
    {
        lines.push_back("K " + info.name);
    }
    void kernelEnd() override { lines.push_back("k"); }
    void ctaBegin(uint32_t c) override
    {
        lines.push_back("C " + std::to_string(c));
    }
    void ctaEnd(uint32_t c) override
    {
        lines.push_back("c " + std::to_string(c));
    }
    void instr(const simt::InstrEvent &ev) override
    {
        lines.push_back("I " + std::to_string(int(ev.cls)) + ' ' +
                        std::to_string(ev.warpId));
    }
    void mem(const simt::MemEvent &ev) override
    {
        std::string l = "M " + std::to_string(int(ev.space));
        for (uint32_t i = 0; i < simt::kWarpSize; ++i)
            if (ev.active >> i & 1)
                l += ' ' + std::to_string(ev.addr[i]);
        lines.push_back(l);
    }
    void branch(const simt::BranchEvent &ev) override
    {
        lines.push_back("B " + std::to_string(ev.taken));
    }
    void barrier(uint32_t warpId) override
    {
        lines.push_back("S " + std::to_string(warpId));
    }
};

std::vector<std::string>
orderedLines(size_t batch)
{
    Engine e;
    e.setEventBatch(batch);
    OrderLog log;
    e.addHook(&log);
    auto in = e.alloc<uint32_t>(1024 * 8);
    auto out = e.alloc<uint32_t>(1024);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    e.launch("divg", divergentKernel, Dim3(8), Dim3(128),
             32 * 32 * 4, p);
    return log.lines;
}

TEST(BatchDispatch, LegacyHookSeesExactEmissionOrder)
{
    // A hook that interleaves event kinds must observe the identical
    // stream whether the dispatcher batches or not: the order log
    // replays instr/mem/branch/barrier in exact emission order.
    auto base = orderedLines(1);
    ASSERT_FALSE(base.empty());
    for (size_t batch : {size_t(7), size_t(64), size_t(4096)})
        EXPECT_EQ(base, orderedLines(batch)) << "batch=" << batch;
}

TEST(BatchDispatch, TraceFileBytesIndependentOfBatch)
{
    auto traceAt = [&](size_t batch, const char *tag) {
        std::string path = testing::TempDir() + "gwc_dispatch_" + tag +
                           ".trace";
        Engine e;
        e.setEventBatch(batch);
        telemetry::TraceWriter w(path);
        e.addHook(&w);
        auto in = e.alloc<uint32_t>(1024 * 8);
        auto out = e.alloc<uint32_t>(1024);
        KernelParams p;
        p.push(in.addr()).push(out.addr());
        e.launch("divg", divergentKernel, Dim3(8), Dim3(128),
                 32 * 32 * 4, p);
        e.clearHooks();
        w.close();
        std::ifstream f(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
        std::remove(path.c_str());
        return bytes;
    };
    std::string base = traceAt(1, "b1");
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(base, traceAt(64, "b64"));
    EXPECT_EQ(base, traceAt(4096, "b4096"));
}

// ---------------------------------------------------------------------
// Capacity knob plumbing.
// ---------------------------------------------------------------------

TEST(BatchDispatch, CapacityDefaultsAndClamps)
{
    Engine e;
    EXPECT_EQ(e.eventBatch(), simt::HookList::kDefaultBatch);
    e.setEventBatch(0); // 0 means "no batching", clamped to 1
    EXPECT_EQ(e.eventBatch(), 1u);
    e.setEventBatch(128);
    EXPECT_EQ(e.eventBatch(), 128u);
}

} // anonymous namespace
} // namespace gwc
