/**
 * @file
 * Unit tests for the timing substrate: trace capture fidelity and
 * the first-order GPU model's qualitative behaviour (more cores
 * faster, smaller caches slower, bandwidth sensitivity, barrier
 * correctness).
 */

#include <gtest/gtest.h>

#include "simt/engine.hh"
#include "timing/gpu.hh"

namespace gwc::timing
{
namespace
{

using simt::Dim3;
using simt::Engine;
using simt::KernelParams;
using simt::OpClass;
using simt::Reg;
using simt::Warp;
using simt::WarpTask;

WarpTask
streamKernel(Warp &w)
{
    uint64_t in = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> x = w.ldg<float>(in, i);
    w.stg<float>(out, i, x * 2.0f);
    co_return;
}

WarpTask
barrierKernel(Warp &w)
{
    Reg<uint32_t> i = w.globalIdX();
    w.stsE<uint32_t>(0, w.tidLinear(), i);
    co_await w.barrier();
    Reg<uint32_t> v = w.ldsE<uint32_t>(0, w.tidLinear());
    w.stg<uint32_t>(w.param<uint64_t>(0), i, v);
    co_return;
}

/** Capture the trace of one launch of @p fn. */
std::vector<KernelTrace>
capture(const simt::KernelFn &fn, Dim3 grid, Dim3 cta, uint32_t smem,
        KernelParams p, Engine &e)
{
    TraceCapture cap;
    e.addHook(&cap);
    e.launch("k", fn, grid, cta, smem, p);
    e.clearHooks();
    return std::move(cap.traces());
}

TEST(Trace, CapturesAllOps)
{
    Engine e;
    const uint32_t n = 256;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(2), Dim3(128), 0, p, e);

    ASSERT_EQ(traces.size(), 1u);
    const KernelTrace &t = traces[0];
    EXPECT_EQ(t.numCtas, 2u);
    EXPECT_EQ(t.warpsPerCta, 4u);
    EXPECT_EQ(t.warps.size(), 8u);
    // Per warp: globalIdX mad, 2 addr computations, load, store, mul.
    for (const auto &wt : t.warps) {
        EXPECT_EQ(wt.ops.size(), 6u);
        int memOps = 0;
        for (const auto &op : wt.ops)
            if (op.cls == OpClass::MemGlobal) {
                ++memOps;
                EXPECT_EQ(op.lineCount, 1u); // coalesced
            }
        EXPECT_EQ(memOps, 2);
    }
    EXPECT_EQ(t.totalOps, 48u);
}

TEST(Trace, StoresFlaggedAndLinesPooled)
{
    Engine e;
    const uint32_t n = 64;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(1), Dim3(64), 0, p, e);
    const KernelTrace &t = traces[0];
    int loads = 0, stores = 0;
    for (const auto &wt : t.warps)
        for (const auto &op : wt.ops)
            if (op.cls == OpClass::MemGlobal)
                (op.store ? stores : loads) += 1;
    EXPECT_EQ(loads, 2);
    EXPECT_EQ(stores, 2);
    EXPECT_EQ(t.linePool.size(), 4u);
}

TEST(Sim, CompletesAndCountsInstructions)
{
    Engine e;
    const uint32_t n = 4096;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(16), Dim3(256), 0, p, e);

    GpuConfig cfg;
    SimResult r = simulate(traces[0], cfg);
    EXPECT_EQ(r.instrs, traces[0].totalOps);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.l1Accesses, 0u);
}

TEST(Sim, BarrierKernelCompletes)
{
    Engine e;
    const uint32_t n = 512;
    auto out = e.alloc<uint32_t>(n);
    KernelParams p;
    p.push(out.addr());
    auto traces = capture(barrierKernel, Dim3(4), Dim3(128),
                          128 * 4, p, e);
    GpuConfig cfg;
    SimResult r = simulate(traces[0], cfg);
    EXPECT_EQ(r.instrs, traces[0].totalOps);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Sim, MoreCoresAreFaster)
{
    Engine e;
    const uint32_t n = 16384;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(64), Dim3(256), 0, p, e);

    GpuConfig few;
    few.numCores = 2;
    GpuConfig many;
    many.numCores = 16;
    uint64_t cFew = simulate(traces[0], few).cycles;
    uint64_t cMany = simulate(traces[0], many).cycles;
    EXPECT_LT(cMany, cFew);
}

WarpTask
reuseKernel(Warp &w)
{
    // Every thread sweeps the same 8KB table twice: cache-size
    // sensitive.
    uint64_t table = w.param<uint64_t>(0);
    uint64_t out = w.param<uint64_t>(1);
    Reg<uint32_t> i = w.globalIdX();
    Reg<float> acc = w.imm(0.0f);
    for (uint32_t pass = 0; w.uniform(pass < 2); ++pass)
        for (uint32_t k = 0; w.uniform(k < 64); ++k) {
            Reg<uint32_t> idx = (i + k * 32u) % 2048u;
            acc = acc + w.ldg<float>(table, idx);
        }
    w.stg<float>(out, i, acc);
    co_return;
}

TEST(Sim, SmallerL1IsSlowerOnReuseKernel)
{
    Engine e;
    auto table = e.alloc<float>(2048);
    auto out = e.alloc<float>(512);
    KernelParams p;
    p.push(table.addr()).push(out.addr());
    auto traces = capture(reuseKernel, Dim3(4), Dim3(128), 0, p, e);

    GpuConfig big;
    big.l1KB = 64;
    GpuConfig tiny;
    tiny.l1KB = 1;
    SimResult rBig = simulate(traces[0], big);
    SimResult rTiny = simulate(traces[0], tiny);
    EXPECT_LT(rBig.l1Misses, rTiny.l1Misses);
    EXPECT_LT(rBig.cycles, rTiny.cycles);
}

TEST(Sim, BandwidthMattersForStreaming)
{
    Engine e;
    const uint32_t n = 32768;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(128), Dim3(256), 0, p, e);

    GpuConfig fat;
    fat.dramBytesPerCycle = 64.0;
    GpuConfig thin;
    thin.dramBytesPerCycle = 4.0;
    EXPECT_LT(simulate(traces[0], fat).cycles,
              simulate(traces[0], thin).cycles);
}

TEST(Sim, SchedulersBothComplete)
{
    Engine e;
    const uint32_t n = 8192;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    auto traces = capture(streamKernel, Dim3(32), Dim3(256), 0, p, e);

    GpuConfig gto;
    gto.sched = SchedPolicy::Gto;
    GpuConfig rr;
    rr.sched = SchedPolicy::RoundRobin;
    SimResult a = simulate(traces[0], gto);
    SimResult b = simulate(traces[0], rr);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_GT(a.cycles, 0u);
    EXPECT_GT(b.cycles, 0u);
}

TEST(Sim, DesignSpaceIsWellFormed)
{
    auto cfgs = designSpace();
    EXPECT_GE(cfgs.size(), 8u);
    for (const auto &c : cfgs) {
        EXPECT_FALSE(c.name.empty());
        EXPECT_GT(c.numCores, 0u);
        EXPECT_GT(c.dramBytesPerCycle, 0.0);
    }
    // Names unique.
    for (size_t i = 0; i < cfgs.size(); ++i)
        for (size_t j = i + 1; j < cfgs.size(); ++j)
            EXPECT_NE(cfgs[i].name, cfgs[j].name);
}

TEST(Sim, SimulateAllAccumulates)
{
    Engine e;
    const uint32_t n = 1024;
    auto in = e.alloc<float>(n);
    auto out = e.alloc<float>(n);
    KernelParams p;
    p.push(in.addr()).push(out.addr());
    TraceCapture cap;
    e.addHook(&cap);
    e.launch("a", streamKernel, Dim3(4), Dim3(256), 0, p);
    e.launch("b", streamKernel, Dim3(4), Dim3(256), 0, p);
    e.clearHooks();
    ASSERT_EQ(cap.traces().size(), 2u);
    GpuConfig cfg;
    SimResult sum = simulateAll(cap.traces(), cfg);
    SimResult one = simulate(cap.traces()[0], cfg);
    EXPECT_EQ(sum.instrs, 2 * one.instrs);
    EXPECT_GT(sum.cycles, one.cycles);
}

} // anonymous namespace
} // namespace gwc::timing
