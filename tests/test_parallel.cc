/**
 * @file
 * Tests of the parallel execution layer: the work-stealing thread
 * pool, concurrent telemetry accumulation, CTA-block parallelism in
 * the engine, and the suite-level determinism guarantee — profiles
 * from a jobs > 1 run must be byte-identical to a serial run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/threadpool.hh"
#include "metrics/profile_io.hh"
#include "simt/engine.hh"
#include "telemetry/stats.hh"
#include "workloads/suite.hh"

namespace gwc
{
namespace
{

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(3);
    const size_t n = 200;
    std::vector<std::atomic<int>> ran(n);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < n; ++i)
        tasks.push_back([&ran, i] { ++ran[i]; });
    pool.runAll(std::move(tasks), 4);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, MaxParallelOneRunsOnCaller)
{
    ThreadPool pool(3);
    const auto caller = std::this_thread::get_id();
    std::atomic<int> offCaller{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back([&] {
            if (std::this_thread::get_id() != caller)
                ++offCaller;
        });
    pool.runAll(std::move(tasks), 1);
    EXPECT_EQ(offCaller.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesLowestIndex)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i)
        tasks.push_back([&ran, i] {
            ++ran;
            if (i == 2 || i == 5)
                throw std::runtime_error("task " + std::to_string(i));
        });
    try {
        pool.runAll(std::move(tasks), 3);
        FAIL() << "expected runAll to rethrow";
    } catch (const std::runtime_error &e) {
        // Both throwing tasks may fire; the lowest task index wins so
        // the error a user sees does not depend on scheduling.
        EXPECT_STREQ(e.what(), "task 2");
    }
    // The group drains fully even when tasks throw.
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ReusableAfterException)
{
    ThreadPool pool(2);
    std::vector<std::function<void()>> bad;
    bad.push_back([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.runAll(std::move(bad), 2), std::runtime_error);

    std::atomic<int> ran{0};
    std::vector<std::function<void()>> good;
    for (int i = 0; i < 10; ++i)
        good.push_back([&ran] { ++ran; });
    pool.runAll(std::move(good), 2);
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, NestedRunAllDoesNotDeadlock)
{
    // The caller participates in draining its own group, so an outer
    // task issuing an inner runAll makes progress even when every
    // worker is already busy (suite task -> engine CTA blocks).
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    std::vector<std::function<void()>> outer;
    for (int i = 0; i < 4; ++i)
        outer.push_back([&pool, &inner] {
            std::vector<std::function<void()>> in;
            for (int j = 0; j < 4; ++j)
                in.push_back([&inner] { ++inner; });
            pool.runAll(std::move(in), 4);
        });
    pool.runAll(std::move(outer), 4);
    EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    EXPECT_GE(ThreadPool::global().workers(), 1u);
}

// ---------------------------------------------------------------------
// Concurrent telemetry accumulation
// ---------------------------------------------------------------------

TEST(ParallelTelemetry, CounterAndTimerAccumulateExactly)
{
    telemetry::Registry reg;
    auto &g = reg.group("t");
    telemetry::Counter &c = g.counter("hits", "");
    telemetry::Timer &t = g.timer("lap", "");

    ThreadPool pool(3);
    const int tasks = 8, iters = 10000;
    std::vector<std::function<void()>> work;
    for (int i = 0; i < tasks; ++i)
        work.push_back([&] {
            for (int k = 0; k < iters; ++k) {
                ++c;
                t.addNs(3);
            }
        });
    pool.runAll(std::move(work), 4);
    EXPECT_EQ(c.value(), uint64_t(tasks) * iters);
    EXPECT_EQ(t.ns(), uint64_t(tasks) * iters * 3);
    EXPECT_EQ(t.laps(), uint64_t(tasks) * iters);
}

TEST(ParallelTelemetry, RegistryMergePreservesTotals)
{
    telemetry::Registry a, b;
    a.group("g").counter("n", "") += 7;
    b.group("g").counter("n", "") += 5;
    b.group("g").timer("t", "").addNs(11);
    b.group("h").histogram("x", "").sample(4);
    a.mergeFrom(b);
    EXPECT_EQ(a.counterTotal("g", "n"), 12u);
    EXPECT_EQ(a.find("g")->findTimer("t")->ns(), 11u);
    EXPECT_EQ(a.find("h")->histograms().front()->count(), 1u);
}

// ---------------------------------------------------------------------
// Engine CTA-block parallelism
// ---------------------------------------------------------------------

simt::WarpTask
saxpyKernel(simt::Warp &w)
{
    using namespace simt;
    uint64_t x = w.param<uint64_t>(0);
    uint64_t y = w.param<uint64_t>(1);
    uint32_t n = w.param<uint32_t>(2);

    Reg<uint32_t> i = w.globalIdX();
    w.If(i < n, [&] {
        Reg<float> a = w.ldg<float>(x, i);
        Reg<float> b = w.ldg<float>(y, i);
        w.stg<float>(y, i, a * 2.0f + b);
    });
    co_return;
}

/** Run saxpy under a profiler at the given engine jobs. */
std::string
saxpyProfileCsv(unsigned jobs, std::vector<float> *result)
{
    simt::Engine e;
    e.setJobs(jobs);
    const uint32_t n = 4096;
    auto x = e.alloc<float>(n);
    auto y = e.alloc<float>(n);
    for (uint32_t i = 0; i < n; ++i) {
        x.set(i, float(i));
        y.set(i, 1.0f);
    }
    metrics::Profiler prof;
    e.addHook(&prof);
    simt::KernelParams p;
    p.push(x.addr()).push(y.addr()).push(n);
    auto st = e.launch("saxpy", saxpyKernel, simt::Dim3(16),
                       simt::Dim3(256), 0, p);
    e.clearHooks();
    EXPECT_EQ(st.ctas, 16u);
    EXPECT_EQ(st.warps, 128u);
    if (result) {
        result->resize(n);
        for (uint32_t i = 0; i < n; ++i)
            (*result)[i] = y[i];
    }
    std::ostringstream os;
    metrics::writeProfilesCsv(os, prof.finalize("SAXPY"));
    return os.str();
}

TEST(ParallelEngine, SaxpyJobsMatchSerial)
{
    std::vector<float> serial, parallel;
    std::string csv1 = saxpyProfileCsv(1, &serial);
    std::string csv4 = saxpyProfileCsv(4, &parallel);
    EXPECT_EQ(csv1, csv4) << "profile must not depend on jobs";
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], parallel[i]) << "i=" << i;
    EXPECT_FLOAT_EQ(serial[100], 2.0f * 100.0f + 1.0f);
}

// ---------------------------------------------------------------------
// Suite-level determinism: jobs = 4 byte-identical to jobs = 1
// ---------------------------------------------------------------------

/** Characterize @p names at @p jobs; return the profiles CSV. */
std::string
suiteCsv(const std::vector<std::string> &names, uint32_t jobs,
         telemetry::Registry *stats)
{
    workloads::SuiteOptions opts;
    opts.jobs = jobs;
    opts.stats = stats;
    auto runs = workloads::runSuite(names, opts);
    for (const auto &r : runs)
        EXPECT_TRUE(r.verified) << r.desc.abbrev;
    std::ostringstream os;
    metrics::writeProfilesCsv(os, workloads::allProfiles(runs));
    return os.str();
}

TEST(ParallelSuite, ProfilesByteIdenticalToSerial)
{
    // Coverage per the determinism contract: MM (barriers + shared
    // memory), HIST (global atomics), HSORT (atomics whose returns
    // are consumed -> serial-pinned launch), SC (float atomics).
    const std::vector<std::string> names{"MM", "HIST", "HSORT", "SC"};
    telemetry::Registry reg1, reg4;
    std::string csv1 = suiteCsv(names, 1, &reg1);
    std::string csv4 = suiteCsv(names, 4, &reg4);
    EXPECT_EQ(csv1, csv4)
        << "jobs=4 profiles must be byte-identical to jobs=1";

    // Event-derived stats totals also match the serial run (wall-clock
    // timers legitimately differ).
    for (const char *stat : {"ctas", "warps", "warp_instrs"})
        EXPECT_EQ(reg1.counterTotal("engine", stat),
                  reg4.counterTotal("engine", stat))
            << stat;
    EXPECT_EQ(reg1.counterTotal("suite", "workloads"),
              reg4.counterTotal("suite", "workloads"));
    EXPECT_EQ(reg1.counterTotal("suite", "kernels"),
              reg4.counterTotal("suite", "kernels"));
}

TEST(ParallelSuite, BfsExpandIsDeterministic)
{
    // BFS expand guards its body with a plain cross-CTA load of
    // visited[]: under CTA-block parallelism the *executed
    // instruction stream* depends on which CTA discovers a node
    // first, even though every winner stores the same values. The
    // launch is therefore pinned serial (ctaParallelSafe = false) —
    // repeated parallel runs must stay byte-identical to jobs=1.
    std::string csv1 = suiteCsv({"BFS"}, 1, nullptr);
    for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(csv1, suiteCsv({"BFS"}, 4, nullptr)) << rep;
}

} // anonymous namespace
} // namespace gwc
